// Command seda-sweep regenerates the paper's evaluation figures:
// Fig. 5 (normalized memory traffic) and Fig. 6 (normalized
// performance) for the 13-workload benchmark suite on the server and
// edge NPUs, plus the Fig. 1(d) motivation data and Table III.
//
// With -explore it instead runs a design-space exploration over a
// parametric platform grid (see internal/explore):
//
//	seda-sweep -explore 'rows=16:256:2x,channels=2|4' -base edge -workloads let
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"text/tabwriter"

	"repro/internal/explore"
	"repro/internal/memprot"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/rescache"
	"repro/seda"
)

func main() {
	fig := flag.String("fig", "all", "which figure to regenerate: 1d, 5a, 5b, 6a, 6b, all")
	table3 := flag.Bool("table3", false, "print Table III (scheme feature comparison) and exit")
	workers := flag.Int("workers", 0, "workload-level worker pool size (0 = GOMAXPROCS)")
	seq := flag.Bool("seq", false, "force the fully sequential pipeline (one goroutine end to end)")
	jsonOut := flag.Bool("json", false, "emit the full suite (both metrics) of the NPUs the figure touches as JSON instead of tables (seda-serve's full-suite wire format)")
	useCache := flag.Bool("cache", false, "memoize sweep results through the content-addressed cache (warm-start reruns)")
	cacheDir := flag.String("cache-dir", "auto", "disk cache directory with -cache; \"auto\" = <user cache dir>/seda-repro (shared with seda-serve), \"off\" = memory only")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the sweep to this file (the hot-path work of PRs 1–5 was steered by exactly this view; pair with -seq for a single-goroutine profile)")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	traceOut := flag.String("trace", "", "write a runtime execution trace to this file (go tool trace)")
	timing := flag.Bool("timing", false, "print the pipeline span tree (per-stage wall times) to stderr as JSON when done")
	exploreSpec := flag.String("explore", "", "run a design-space exploration over this grid spec (e.g. 'rows=16:256:2x,channels=2|4') instead of regenerating figures")
	exploreBase := flag.String("base", "edge", "with -explore: platform preset the grid perturbs")
	exploreWorkloads := flag.String("workloads", "", "with -explore: comma-separated workload subset (default: the full suite)")
	exploreScheme := flag.String("scheme", "SeDA", "with -explore: protection scheme explored under")
	flag.Parse()

	if *table3 {
		printTable3()
		return
	}

	var err error
	profiles, err = obs.StartProfiles(*cpuProfile, *memProfile, *traceOut)
	if err != nil {
		fatal(err)
	}
	defer profiles.Stop() //nolint:errcheck

	opts := seda.DefaultSuiteOptions()
	opts.Workers = *workers
	if *seq {
		opts = seda.SequentialOptions()
	}

	// With -cache, results are served through the same content-addressed
	// cache seda-serve uses; the default disk layer makes reruns of an
	// already-swept figure near-instant (and shares warmth with a local
	// seda-serve).
	var cache *rescache.Cache
	if *useCache {
		var err error
		cache, err = rescache.New(rescache.Options{Dir: rescache.ResolveDir(*cacheDir)})
		if err != nil {
			fatal(err)
		}
	}

	server := seda.ServerNPU()
	edge := seda.EdgeNPU()

	needServer := *fig == "all" || *fig == "5a" || *fig == "6a" || *fig == "1d"
	needEdge := *fig == "all" || *fig == "5b" || *fig == "6b"

	// Ctrl-C cancels the in-flight evaluation cooperatively (the
	// pipeline observes ctx down to the DRAM drain loops) instead of
	// letting a multi-second sweep run to completion; a second signal
	// falls back to the default handler and kills outright.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// -timing arms a tracer over everything that runs below; the tree
	// prints to stderr on the success path (fatal exits skip it).
	if *timing {
		var tr *obs.Tracer
		ctx, tr = obs.NewTracer(ctx, "seda-sweep")
		defer func() {
			tr.Finish()
			tr.WriteJSON(os.Stderr, true) //nolint:errcheck
		}()
	}

	if *exploreSpec != "" {
		if err := runExplore(ctx, cache, opts, *exploreSpec, *exploreBase, *exploreWorkloads, *exploreScheme, *jsonOut); err != nil {
			fatal(err)
		}
		return
	}

	var srv, edg *seda.SuiteResult
	if needServer {
		if srv, err = seda.RunSuiteCachedCtx(ctx, cache, server, model.All(), opts); err != nil {
			fatal(err)
		}
	}
	if needEdge {
		if edg, err = seda.RunSuiteCachedCtx(ctx, cache, edge, model.All(), opts); err != nil {
			fatal(err)
		}
	}

	if *jsonOut {
		var suites []*seda.SuiteResult
		if srv != nil {
			suites = append(suites, srv)
		}
		if edg != nil {
			suites = append(suites, edg)
		}
		if len(suites) == 0 {
			fatal(fmt.Errorf("unknown figure %q", *fig))
		}
		if len(suites) == 1 {
			err = suites[0].WriteJSON(os.Stdout)
		} else {
			err = seda.WriteSuitesJSON(os.Stdout, suites...)
		}
		if err != nil {
			fatal(err)
		}
		return
	}

	switch *fig {
	case "1d":
		printFig1d(srv)
	case "5a":
		srv.WriteTrafficTable(os.Stdout)
	case "5b":
		edg.WriteTrafficTable(os.Stdout)
	case "6a":
		srv.WritePerfTable(os.Stdout)
	case "6b":
		edg.WritePerfTable(os.Stdout)
	case "all":
		printFig1d(srv)
		fmt.Println()
		srv.WriteTrafficTable(os.Stdout)
		fmt.Println()
		edg.WriteTrafficTable(os.Stdout)
		fmt.Println()
		srv.WritePerfTable(os.Stdout)
		fmt.Println()
		edg.WritePerfTable(os.Stdout)
		fmt.Printf("\nHeadline: SeDA reduces avg performance overhead vs SGX-64B by %.2f%% (server), %.2f%% (edge)\n",
			srv.HeadlineImprovement(), edg.HeadlineImprovement())
	default:
		fatal(fmt.Errorf("unknown figure %q", *fig))
	}
}

// runExplore is the -explore mode: parse the grid, run the
// surrogate-pruned exploration, and print either the full JSON wire
// form (-json) or a frontier table plus a grep-friendly summary line.
func runExplore(ctx context.Context, cache *rescache.Cache, opts seda.SuiteOptions, rawSpec, baseName, workloads, schemeName string, jsonOut bool) error {
	spec, err := explore.ParseSpec(rawSpec)
	if err != nil {
		return err
	}
	base, err := seda.NPUByName(baseName)
	if err != nil {
		return err
	}
	scheme, err := seda.SchemeByName(schemeName)
	if err != nil {
		return err
	}
	nets := model.All()
	if workloads != "" {
		nets = nets[:0:0]
		for _, name := range strings.Split(workloads, ",") {
			name = strings.TrimSpace(name)
			n := model.ByName(name)
			if n == nil {
				return fmt.Errorf("unknown workload %q (known: %s)", name, strings.Join(model.Names(), ", "))
			}
			nets = append(nets, n)
		}
	}

	res, err := explore.Run(ctx, spec, base, explore.Options{
		Workloads: nets,
		Scheme:    scheme,
		Cache:     cache,
		Suite:     opts,
	})
	if err != nil {
		return err
	}
	if jsonOut {
		return res.WriteJSON(os.Stdout)
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "Pareto frontier of %s over base %s (scheme %s, workloads %s)\n",
		res.Spec, res.Base, res.Scheme.Name(), strings.Join(res.Workloads, ","))
	fmt.Fprintln(w, "point\tcost\tsurrogate cycles\texec cycles")
	for _, i := range res.Frontier {
		p := &res.Points[i]
		fmt.Fprintf(w, "%s\t%.0f\t%.0f\t%d\n", p.Config.Name, p.Cost, p.SurrogateCycles, p.ExecCycles)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("explore: points=%d invalid=%d candidates=%d confirmed=%d frontier=%d margin=%.3f",
		len(res.Points)+res.Invalid, res.Invalid, res.Candidates(), res.Confirmed(), len(res.Frontier), res.Margin)
	if cache != nil {
		fmt.Printf(" fresh_computes=%d", cache.Stats().Computes)
	}
	fmt.Println()
	return nil
}

// printFig1d reproduces the motivation figure: memory-access overhead
// (traffic and execution time) of a typical secure accelerator
// (SGX-64B) per workload.
func printFig1d(s *seda.SuiteResult) {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Fig. 1(d) — memory access overhead of a typical secure accelerator (SGX-64B, server NPU)")
	fmt.Fprintln(w, "workload\ttraffic overhead(%)\texec. time overhead(%)")
	var tSum, eSum float64
	names := s.Workloads()
	for _, name := range names {
		r, err := seda.SchemeRow(s.Rows[name], memprot.SchemeSGX64)
		if err != nil {
			continue
		}
		fmt.Fprintf(w, "%s\t%.2f\t%.2f\n", name, r.TrafficOverhead()*100, r.PerfOverhead()*100)
		tSum += r.TrafficOverhead()
		eSum += r.PerfOverhead()
	}
	fmt.Fprintf(w, "avg\t%.2f\t%.2f\n", tSum/float64(len(names))*100, eSum/float64(len(names))*100)
	w.Flush() //nolint:errcheck
}

func printTable3() {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Table III — comparison of memory protection schemes")
	fmt.Fprintln(w, "scheme\tencryption\tintegrity\toff-chip metadata\ttiling-aware\tscalable-encryption")
	for _, s := range seda.Schemes() {
		if s.Kind == memprot.Baseline {
			continue
		}
		f := s.FeatureRow()
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%s\t%s\n",
			s.Name(), f.EncryptionGranularity, f.IntegrityGranularity,
			f.OffChipMetadata, check(f.TilingAware), check(f.EncryptionScalable))
	}
	w.Flush() //nolint:errcheck
}

func check(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

// profiles holds the -cpuprofile/-memprofile/-trace outputs, kept so
// fatal can flush them: os.Exit skips defers, and an unflushed pprof
// file is truncated junk.
var profiles *obs.Profiles

func fatal(err error) {
	profiles.Stop() //nolint:errcheck
	if errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "seda-sweep: interrupted")
		os.Exit(130) // conventional 128+SIGINT
	}
	fmt.Fprintln(os.Stderr, "seda-sweep:", err)
	os.Exit(1)
}
