// Command seda-attack demonstrates the paper's two attacks
// (Algorithm 1: SECA, Algorithm 2: RePA) against both the vulnerable
// constructions and the SeDA defenses.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/aesx"
	"repro/internal/attack"
)

func main() {
	runSECA := flag.Bool("seca", true, "run the Single-Element Collision Attack demo")
	runRePA := flag.Bool("repa", true, "run the Re-Permutation Attack demo")
	flag.Parse()

	if *runSECA {
		if err := secaDemo(); err != nil {
			fmt.Fprintln(os.Stderr, "seda-attack:", err)
			os.Exit(1)
		}
	}
	if *runRePA {
		repaDemo()
	}
}

func secaDemo() error {
	fmt.Println("=== SECA (Algorithm 1): shared OTP vs bandwidth-aware encryption ===")
	b, err := aesx.NewBAES([]byte("0123456789abcdef"))
	if err != nil {
		return err
	}
	// A post-ReLU-like sparse activation block: mostly zeros.
	pt := attack.SparseTensor(4096, 89, 7)
	ctr := aesx.Counter{PA: 0x1000_0000, VN: 42}
	var zeroGuess [16]byte

	shared := attack.RunSECA(attack.EncryptSharedPad(b, pt, ctr), pt, zeroGuess)
	fmt.Printf("shared OTP:   attacker recovered %d/%d segments -> attack %s\n",
		shared.SegmentsRecovered, shared.TotalSegments, verdict(shared.Success()))

	baes := attack.RunSECA(attack.EncryptBAES(b, pt, ctr), pt, zeroGuess)
	fmt.Printf("B-AES (SeDA): attacker recovered %d/%d segments -> attack %s\n\n",
		baes.SegmentsRecovered, baes.TotalSegments, verdict(baes.Success()))
	return nil
}

func repaDemo() {
	fmt.Println("=== RePA (Algorithm 2): naive XOR-MAC vs position-bound MAC ===")
	b, err := aesx.NewBAES([]byte("0123456789abcdef"))
	if err != nil {
		fmt.Fprintln(os.Stderr, "seda-attack:", err)
		os.Exit(1)
	}
	blocks := make([][]byte, 16)
	for i := range blocks {
		pt := attack.SparseTensor(512, 61, byte(i))
		blocks[i] = attack.EncryptBAES(b, pt, aesx.Counter{PA: uint64(i) * 512, VN: 1})
	}
	perm := make([]int, len(blocks))
	for i := range perm {
		perm[i] = i
	}
	perm[3], perm[11] = perm[11], perm[3] // attacker swaps two blocks

	naive := attack.RunRePA([]byte("layer-mac-key"), blocks, perm, false)
	fmt.Printf("naive XOR-MAC:      verification passed=%v, data intact=%v -> attack %s\n",
		naive.VerificationPassed, naive.DataIntact, verdict(naive.AttackSucceeded()))

	bound := attack.RunRePA([]byte("layer-mac-key"), blocks, perm, true)
	fmt.Printf("position-bound MAC: verification passed=%v, data intact=%v -> attack %s\n",
		bound.VerificationPassed, bound.DataIntact, verdict(bound.AttackSucceeded()))
}

func verdict(success bool) string {
	if success {
		return "SUCCEEDED (vulnerable)"
	}
	return "DEFEATED"
}
