// Command seda-loadgen is the synthetic traffic harness and capacity
// model for the serving stack. It replays a declarative scenario (a
// built-in name or a JSON file) against one seda-serve replica or the
// seda-router fleet, measures client-side latency on HDR-style
// log-bucketed histograms (coordinated-omission-corrected for
// open-loop phases), classifies every response into an
// ok/stale/304/shed/error taxonomy, scrapes /metrics at every phase
// boundary to attribute cache and router counter deltas to the traffic
// that caused them, and writes a machine-readable capacity report.
//
// Everything sent is a pure function of (scenario, seed): the same
// -seed replays a byte-identical request schedule (dump it with
// -plan), and the report embeds the schedule's SHA-256 digest so a
// measurement names its workload exactly.
//
// Modes:
//
//	seda-loadgen -target URL -scenario smoke -report out.json
//	    replay a scenario, write the measured report
//	seda-loadgen -scenario smoke -plan
//	    print the deterministic plan report (no traffic)
//	seda-loadgen -scenario smoke -schedule-out sched.tsv
//	    dump the request schedule (no traffic)
//	seda-loadgen -target URL -scenario capacity -search -slo-p99 250ms
//	    step-load search: ramp + bisect offered RPS to the highest rate
//	    holding the p99 SLO and shed ceiling; then -bench-json upserts
//	    a BENCH_SERVE.json topology row (-bench-label names it)
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/internal/loadgen"
	"repro/internal/obs"
	"repro/seda"
)

func main() {
	target := flag.String("target", "", "base URL traffic is sent to (replica or router), e.g. http://127.0.0.1:8344")
	scenario := flag.String("scenario", "smoke", "scenario: a JSON file path or a built-in name ("+strings.Join(loadgen.BuiltinNames(), ", ")+")")
	seed := flag.Uint64("seed", 0, "schedule seed; 0 uses the scenario's embedded seed. Identical seeds replay byte-identical schedules")
	plan := flag.Bool("plan", false, "print the deterministic plan report and exit without sending traffic")
	scheduleOut := flag.String("schedule-out", "", "write the request schedule dump to this file (\"-\" = stdout) and exit without sending traffic")
	reportOut := flag.String("report", "-", "write the report JSON here (\"-\" = stdout)")
	scrape := flag.String("scrape", "", "comma-separated extra /metrics base URLs (default: the target). Behind a router, list the router and every replica so cache counters attribute")
	scaleDuration := flag.Float64("scale-duration", 1, "multiply every phase duration (CI runs long scenarios briefly; request counts are untouched)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request timeout")
	maxInflight := flag.Int("max-inflight", 512, "open-loop concurrency cap; arrivals past it are counted dropped, not queued")
	quiet := flag.Bool("quiet", false, "suppress per-phase progress lines on stderr")

	search := flag.Bool("search", false, "step-load capacity search: ramp offered RPS until the SLO breaks, bisect to the max sustainable rate (uses the scenario's last phase mix)")
	sloP99 := flag.Duration("slo-p99", 250*time.Millisecond, "search: p99 latency ceiling a step must hold")
	maxShed := flag.Float64("max-shed", 0.01, "search: tolerated (shed+rejected)/total per step")
	rpsMin := flag.Float64("rps-min", 5, "search: starting offered rate")
	rpsMax := flag.Float64("rps-max", 2000, "search: offered-rate ceiling")
	stepDuration := flag.Duration("step-duration", 5*time.Second, "search: offered window per step")
	resolution := flag.Float64("resolution", 0.1, "search: stop when the bracket is within this relative width")

	benchJSON := flag.String("bench-json", "", "upsert a topology row into this BENCH_SERVE.json-style file after the run")
	benchLabel := flag.String("bench-label", "", "row label for -bench-json, e.g. \"1-replica\" or \"router-3-replicas\"")
	benchPhase := flag.String("bench-phase", "", "phase whose numbers fill the bench row (default: the last phase)")
	benchNote := flag.String("bench-note", "", "free-form note stored on the bench row")
	version := flag.Bool("version", false, "print build identity and exit")
	flag.Parse()

	if *version {
		b := obs.ReadBuild()
		fmt.Printf("seda-loadgen %s revision %s pipeline %s %s report-schema %s\n",
			b.ModuleVersion, b.Revision, seda.PipelineVersion, b.GoVersion, loadgen.ReportVersion)
		return
	}

	sc, err := loadgen.LoadScenario(*scenario)
	if err != nil {
		fatal(err)
	}
	sc.ScaleDurations(*scaleDuration)
	useSeed := *seed
	if useSeed == 0 {
		useSeed = sc.Seed
	}
	if useSeed == 0 {
		useSeed = 1
	}

	// Traffic-free modes first: they must work without a target.
	if *scheduleOut != "" {
		out := os.Stdout
		if *scheduleOut != "-" {
			f, err := os.Create(*scheduleOut)
			if err != nil {
				fatal(err)
			}
			defer f.Close() //nolint:errcheck
			out = f
		}
		digest, err := sc.WriteSchedule(out, useSeed)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "seda-loadgen: schedule digest %s\n", digest)
		return
	}
	if *plan {
		if err := loadgen.Plan(sc, useSeed).WriteJSON(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}

	if *target == "" {
		fatal(fmt.Errorf("-target is required (or use -plan / -schedule-out for traffic-free modes)"))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	runOpts := loadgen.RunOptions{
		Scenario:       sc,
		Seed:           useSeed,
		Target:         *target,
		RequestTimeout: *timeout,
		MaxInflight:    *maxInflight,
	}
	if *scrape != "" {
		for _, ep := range strings.Split(*scrape, ",") {
			if ep = strings.TrimSpace(ep); ep != "" {
				runOpts.Scrape = append(runOpts.Scrape, strings.TrimRight(ep, "/"))
			}
		}
	}
	if !*quiet {
		runOpts.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "seda-loadgen: "+format+"\n", args...)
		}
	}

	var rep *loadgen.Report
	if *search {
		rep, err = loadgen.Search(ctx, loadgen.SearchOptions{
			Run:          runOpts,
			SLOP99:       *sloP99,
			MaxShedRate:  *maxShed,
			MinRPS:       *rpsMin,
			MaxRPS:       *rpsMax,
			StepDuration: *stepDuration,
			Resolution:   *resolution,
		})
	} else {
		rep, err = loadgen.Run(ctx, runOpts)
	}
	if err != nil {
		fatal(err)
	}

	out := os.Stdout
	if *reportOut != "-" && *reportOut != "" {
		f, err := os.Create(*reportOut)
		if err != nil {
			fatal(err)
		}
		defer f.Close() //nolint:errcheck
		out = f
	}
	if err := rep.WriteJSON(out); err != nil {
		fatal(err)
	}

	if *benchJSON != "" {
		if *benchLabel == "" {
			fatal(fmt.Errorf("-bench-json needs -bench-label to name the topology row"))
		}
		row, err := rep.Row(*benchLabel, *benchPhase, *benchNote)
		if err != nil {
			fatal(err)
		}
		env := map[string]any{
			"go":         runtime.Version(),
			"gomaxprocs": runtime.GOMAXPROCS(0),
			"os_arch":    runtime.GOOS + "/" + runtime.GOARCH,
			"note":       "single shared CPU budget: client, router and replicas contend for the same cores; rows compare topologies, not absolute hardware capacity",
		}
		if err := loadgen.UpsertBenchRow(*benchJSON, *benchLabel, "Measured serving capacity by topology (seda-loadgen reports; see EXPERIMENTS.md for methodology)", env, row); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "seda-loadgen: bench row %q upserted into %s\n", *benchLabel, *benchJSON)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "seda-loadgen:", err)
	os.Exit(1)
}
