// Command seda-trace inspects the DRAM traces the pipeline produces:
// per-layer schedule and traffic breakdown for a (workload, NPU,
// scheme) triple, optionally dumping raw accesses — the equivalent of
// SCALE-Sim's trace files plus the protection scheme's metadata
// accesses.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"

	"repro/internal/memprot"
	"repro/internal/model"
	"repro/internal/scalesim"
	"repro/internal/trace"
	"repro/seda"
)

func main() {
	workload := flag.String("workload", "let", "workload short name ("+strings.Join(model.Names(), ", ")+")")
	npuName := flag.String("npu", "edge", "npu config: server or edge")
	schemeName := flag.String("scheme", "SeDA", "protection scheme: Baseline, SGX-64B, SGX-512B, MGX-64B, MGX-512B, SeDA")
	dump := flag.Int("dump", 0, "dump the first N raw accesses per layer")
	raw := flag.Bool("raw", false, "disable overlay coalescing: dump the uncoalesced metadata stream, one entry per emission (figures are identical either way)")
	flag.Parse()

	net := model.ByName(*workload)
	if net == nil {
		fatal(fmt.Errorf("unknown workload %q (known: %s)",
			*workload, strings.Join(model.Names(), ", ")))
	}
	var npu seda.NPUConfig
	switch *npuName {
	case "server":
		npu = seda.ServerNPU()
	case "edge":
		npu = seda.EdgeNPU()
	default:
		fatal(fmt.Errorf("unknown npu %q", *npuName))
	}
	scheme, err := seda.SchemeByName(*schemeName)
	if err != nil {
		fatal(err)
	}

	arr, err := scalesim.New(npu.ArrayRows, npu.ArrayCols, npu.SRAMBytes)
	if err != nil {
		fatal(err)
	}
	sim, err := arr.SimulateNetwork(net)
	if err != nil {
		fatal(err)
	}
	opts := memprot.DefaultOptions()
	if *raw {
		opts.CoalesceOverlays = false
	}
	prots, err := memprot.ProtectAll([]memprot.Scheme{scheme}, sim, opts)
	if err != nil {
		fatal(err)
	}
	prot := prots[0]

	fmt.Printf("%s on %s NPU under %s\n\n", net.Full, npu.Name, scheme.Name())
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "layer\ttiles\tgroups\tdata(KB)\tmac(KB)\tvn(KB)\ttree(KB)\toverfetch(KB)\toptBlk")
	for i, pl := range prot.Layers {
		lr := &sim.Layers[i]
		o := pl.Overhead
		fmt.Fprintf(w, "%s\t%d\t%d\t%.1f\t%.2f\t%.2f\t%.2f\t%.2f\t%s\n",
			lr.Layer.Name, lr.Tiling.RowTiles, lr.Tiling.Groups,
			kb(o.DataBytes), kb(o.MACBytes), kb(o.VNBytes), kb(o.TreeBytes),
			kb(o.OverFetchBytes), optBlkStr(o.OptBlk))
	}
	w.Flush() //nolint:errcheck

	if *dump > 0 {
		// Walk the spine+overlay merge in place — the flat trace is
		// never materialized, matching what the DRAM model consumes.
		// The walk visits the whole layer and no-ops past the dump
		// limit; that costs nothing next to the simulation already run
		// and keeps the anchor-merge semantics in one place.
		for i := range prot.Layers {
			pl := &prot.Layers[i]
			fmt.Printf("\nlayer %d (%s): first %d accesses (%d data + %d overlay total)\n",
				i, sim.Layers[i].Layer.Name, *dump, pl.Spine.Len(), pl.Deltas.Len())
			printed := 0
			trace.ForEachMerged(pl.Spine, pl.Deltas, func(a *trace.Access) {
				if printed >= *dump {
					return
				}
				fmt.Printf("  cycle=%-10d %s %-9s addr=%#011x bytes=%d\n",
					a.Cycle, a.Kind, a.Class, a.Addr, a.Bytes)
				printed++
			})
		}
	}
}

func kb(b uint64) float64 { return float64(b) / 1024 }

func optBlkStr(b int) string {
	if b == 0 {
		return "-"
	}
	return fmt.Sprintf("%dB", b)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "seda-trace:", err)
	os.Exit(1)
}
