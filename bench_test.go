// Benchmarks regenerating every table and figure of the paper's
// evaluation (§IV). Each figure bench runs the full 13-workload suite
// through the complete pipeline (systolic-array schedule → protection
// scheme → DRAM timing) and reports the figure's headline numbers as
// benchmark metrics; suite results are cached across benches within a
// run so Fig. 5 and Fig. 6 share their sweeps.
//
// Regenerate everything with:
//
//	go test -bench=. -benchmem .
package repro

import (
	"sync"
	"testing"

	"repro/internal/aesx"
	"repro/internal/attack"
	"repro/internal/authblock"
	"repro/internal/hwmodel"
	"repro/internal/memprot"
	"repro/internal/model"
	"repro/internal/scalesim"
	"repro/seda"
)

var (
	suiteOnce   sync.Once
	suiteServer *seda.SuiteResult
	suiteEdge   *seda.SuiteResult
	suiteErr    error
)

// suites runs the two full sweeps once per test binary.
func suites(b *testing.B) (*seda.SuiteResult, *seda.SuiteResult) {
	b.Helper()
	suiteOnce.Do(func() {
		suiteServer, suiteErr = seda.RunSuite(seda.ServerNPU())
		if suiteErr != nil {
			return
		}
		suiteEdge, suiteErr = seda.RunSuite(seda.EdgeNPU())
	})
	if suiteErr != nil {
		b.Fatal(suiteErr)
	}
	return suiteServer, suiteEdge
}

// BenchmarkFig1dMotivation regenerates Fig. 1(d): traffic and
// execution-time overhead of a typical secure accelerator (SGX-64B)
// across the workloads on the server NPU.
func BenchmarkFig1dMotivation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		srv, _ := suites(b)
		var tSum, eSum float64
		n := 0
		for _, name := range srv.Workloads() {
			r, err := seda.SchemeRow(srv.Rows[name], memprot.SchemeSGX64)
			if err != nil {
				b.Fatal(err)
			}
			tSum += r.TrafficOverhead()
			eSum += r.PerfOverhead()
			n++
		}
		b.ReportMetric(tSum/float64(n)*100, "traffic-overhead-%")
		b.ReportMetric(eSum/float64(n)*100, "exec-overhead-%")
	}
}

// BenchmarkFig4AreaPower regenerates Fig. 4: T-AES vs B-AES area and
// power across bandwidth multiples 1-8x at 28 nm.
func BenchmarkFig4AreaPower(b *testing.B) {
	h := hwmodel.Default28nm()
	for i := 0; i < b.N; i++ {
		taes, baes := h.Sweep(8)
		if len(taes) != 8 || len(baes) != 8 {
			b.Fatal("sweep shape wrong")
		}
		b.ReportMetric(taes[7].AreaUm2, "taes-area-um2@8x")
		b.ReportMetric(baes[7].AreaUm2, "baes-area-um2@8x")
		b.ReportMetric(taes[7].PowerUw, "taes-power-uw@8x")
		b.ReportMetric(baes[7].PowerUw, "baes-power-uw@8x")
	}
}

// reportFig5 emits the average normalized-traffic overheads (the
// "avg" bars of Fig. 5) as metrics.
func reportFig5(b *testing.B, s *seda.SuiteResult) {
	b.ReportMetric((s.AvgNormTraffic(memprot.SchemeSGX64)-1)*100, "sgx64-traffic-%")
	b.ReportMetric((s.AvgNormTraffic(memprot.SchemeMGX64)-1)*100, "mgx64-traffic-%")
	b.ReportMetric((s.AvgNormTraffic(memprot.SchemeSGX512)-1)*100, "sgx512-traffic-%")
	b.ReportMetric((s.AvgNormTraffic(memprot.SchemeMGX512)-1)*100, "mgx512-traffic-%")
	b.ReportMetric((s.AvgNormTraffic(memprot.SchemeSeDA)-1)*100, "seda-traffic-%")
}

// BenchmarkFig5ServerTraffic regenerates Fig. 5(a).
func BenchmarkFig5ServerTraffic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		srv, _ := suites(b)
		reportFig5(b, srv)
	}
}

// BenchmarkFig5EdgeTraffic regenerates Fig. 5(b).
func BenchmarkFig5EdgeTraffic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, edg := suites(b)
		reportFig5(b, edg)
	}
}

// reportFig6 emits the average slowdowns (the "avg" bars of Fig. 6).
func reportFig6(b *testing.B, s *seda.SuiteResult) {
	b.ReportMetric((1-s.AvgNormPerf(memprot.SchemeSGX64))*100, "sgx64-slowdown-%")
	b.ReportMetric((1-s.AvgNormPerf(memprot.SchemeMGX64))*100, "mgx64-slowdown-%")
	b.ReportMetric((1-s.AvgNormPerf(memprot.SchemeSGX512))*100, "sgx512-slowdown-%")
	b.ReportMetric((1-s.AvgNormPerf(memprot.SchemeMGX512))*100, "mgx512-slowdown-%")
	b.ReportMetric((1-s.AvgNormPerf(memprot.SchemeSeDA))*100, "seda-slowdown-%")
	b.ReportMetric(s.HeadlineImprovement(), "seda-vs-sgx64-pp")
}

// BenchmarkFig6ServerPerf regenerates Fig. 6(a).
func BenchmarkFig6ServerPerf(b *testing.B) {
	for i := 0; i < b.N; i++ {
		srv, _ := suites(b)
		reportFig6(b, srv)
	}
}

// BenchmarkFig6EdgePerf regenerates Fig. 6(b).
func BenchmarkFig6EdgePerf(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, edg := suites(b)
		reportFig6(b, edg)
	}
}

// BenchmarkTable1Granularity builds Table I (qualitative; the bench
// exists so every table has a regeneration target).
func BenchmarkTable1Granularity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := seda.Schemes() // plot-order schemes, used by Table III too
		if len(rows) != 6 {
			b.Fatal("scheme list wrong")
		}
	}
}

// BenchmarkTable3Features builds Table III's feature matrix.
func BenchmarkTable3Features(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, s := range seda.Schemes() {
			f := s.FeatureRow()
			if f.EncryptionGranularity == "" {
				b.Fatal("empty feature row")
			}
		}
	}
}

// --- Ablation and micro-benchmarks for the design choices DESIGN.md
// calls out. ---

// BenchmarkAblationOptBlkSearch compares the searched optBlk cost
// against fixed 64B/512B granularities on a real layer schedule.
func BenchmarkAblationOptBlkSearch(b *testing.B) {
	cfg, err := scalesim.New(32, 32, 480*1024)
	if err != nil {
		b.Fatal(err)
	}
	sim, err := cfg.SimulateNetwork(model.ByName("rest"))
	if err != nil {
		b.Fatal(err)
	}
	tr := sim.Layers[1].Trace
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := authblock.SearchLayer(tr)
		f64 := authblock.Evaluate(tr.Accesses, 64)
		f512 := authblock.Evaluate(tr.Accesses, 512)
		b.ReportMetric(float64(r.Best.Total()), "optblk-cost-B")
		b.ReportMetric(float64(f64.Total()), "fixed64-cost-B")
		b.ReportMetric(float64(f512.Total()), "fixed512-cost-B")
	}
}

// BenchmarkAESEngine measures the software AES-128 block rate.
func BenchmarkAESEngine(b *testing.B) {
	e, err := aesx.NewEngine([]byte("0123456789abcdef"))
	if err != nil {
		b.Fatal(err)
	}
	var in, out [16]byte
	b.SetBytes(16)
	for i := 0; i < b.N; i++ {
		e.EncryptBlock(out[:], in[:])
	}
}

// BenchmarkBAESvsTAESPads compares deriving 32 segment pads via B-AES
// (1 AES op + XORs) against T-AES (32 AES ops), the software analogue
// of Fig. 4's hardware savings.
func BenchmarkBAESvsTAESPads(b *testing.B) {
	eng, err := aesx.NewBAES([]byte("0123456789abcdef"))
	if err != nil {
		b.Fatal(err)
	}
	c := aesx.Counter{PA: 0x1000, VN: 1}
	b.Run("B-AES", func(b *testing.B) {
		buf := make([]byte, 512)
		b.SetBytes(512)
		for i := 0; i < b.N; i++ {
			eng.XORSegments(buf, buf, c)
		}
	})
	b.Run("T-AES", func(b *testing.B) {
		buf := make([]byte, 512)
		b.SetBytes(512)
		for i := 0; i < b.N; i++ {
			eng.Engine().XORKeyStreamCTR(buf, buf, c)
		}
	})
}

// BenchmarkSECA measures the attack's frequency analysis (it must be
// cheap for the attack model to be credible).
func BenchmarkSECA(b *testing.B) {
	eng, err := aesx.NewBAES([]byte("0123456789abcdef"))
	if err != nil {
		b.Fatal(err)
	}
	pt := attack.SparseTensor(4096, 89, 3)
	ct := attack.EncryptSharedPad(eng, pt, aesx.Counter{PA: 1, VN: 1})
	var zeros [16]byte
	b.SetBytes(int64(len(ct)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		attack.RunSECA(ct, pt, zeros)
	}
}
