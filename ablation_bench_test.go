package repro

// Ablation benchmarks for the design choices DESIGN.md calls out:
// dataflow mapping, metadata-cache sizing, and protection-block
// granularity. These are not paper figures; they quantify the knobs
// around SeDA's operating point.

import (
	"fmt"
	"testing"

	"repro/internal/authblock"
	"repro/internal/dram"
	"repro/internal/memprot"
	"repro/internal/model"
	"repro/internal/scalesim"
)

// BenchmarkAblationDataflow compares the three systolic dataflow
// mappings' compute cycles on ResNet-18 for both NPU array sizes.
func BenchmarkAblationDataflow(b *testing.B) {
	for _, cfg := range []struct {
		name       string
		rows, cols int
		sram       int
	}{
		{"server", 256, 256, 24 << 20},
		{"edge", 32, 32, 480 << 10},
	} {
		c, err := scalesim.New(cfg.rows, cfg.cols, cfg.sram)
		if err != nil {
			b.Fatal(err)
		}
		sim, err := c.SimulateNetwork(model.ByName("rest"))
		if err != nil {
			b.Fatal(err)
		}
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				totals := map[scalesim.Dataflow]uint64{}
				for li := range sim.Layers {
					for df, cyc := range c.ComputeCyclesByDataflow(&sim.Layers[li]) {
						totals[df] += cyc
					}
				}
				b.ReportMetric(float64(totals[scalesim.WeightStationary]), "ws-cycles")
				b.ReportMetric(float64(totals[scalesim.OutputStationary]), "os-cycles")
				b.ReportMetric(float64(totals[scalesim.InputStationary]), "is-cycles")
			}
		})
	}
}

// BenchmarkAblationMetadataCaches sweeps the SGX VN/MAC cache sizes
// and reports the traffic overhead at each point — the sensitivity
// behind the paper's choice of 16 KB + 8 KB.
func BenchmarkAblationMetadataCaches(b *testing.B) {
	c, err := scalesim.New(32, 32, 480<<10)
	if err != nil {
		b.Fatal(err)
	}
	sim, err := c.SimulateNetwork(model.ByName("rest"))
	if err != nil {
		b.Fatal(err)
	}
	for _, kb := range []int{4, 8, 16, 32, 64} {
		kb := kb
		b.Run(fmt.Sprintf("vn%dKB", kb), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opts := memprot.DefaultOptions()
				opts.VNCacheBytes = kb * 1024
				opts.MACCacheBytes = kb * 512 // keep the paper's 2:1 ratio
				res, err := memprot.Protect(memprot.SchemeSGX64, sim, opts)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.TrafficOverheadRatio()*100, "sgx64-traffic-%")
			}
		})
	}
}

// BenchmarkAblationBlockGranularity sweeps fixed protection-block
// sizes through the MGX cost structure and contrasts them with
// SeDA's searched optBlk — the trade-off Table I describes.
func BenchmarkAblationBlockGranularity(b *testing.B) {
	c, err := scalesim.New(32, 32, 480<<10)
	if err != nil {
		b.Fatal(err)
	}
	sim, err := c.SimulateNetwork(model.ByName("goo"))
	if err != nil {
		b.Fatal(err)
	}
	for _, blk := range []int{64, 128, 256, 512, 1024, 2048} {
		blk := blk
		b.Run(fmt.Sprintf("mgx%dB", blk), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := memprot.Protect(memprot.Scheme{Kind: memprot.MGX, Block: blk}, sim,
					memprot.DefaultOptions())
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.TrafficOverheadRatio()*100, "traffic-%")
			}
		})
	}
	b.Run("seda-optblk", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := memprot.Protect(memprot.SchemeSeDA, sim, memprot.DefaultOptions())
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.TrafficOverheadRatio()*100, "traffic-%")
		}
	})
	_ = authblock.MinBlock
}

// BenchmarkDRAMSimulator measures the DDR timing model's throughput
// in simulated bursts per second.
func BenchmarkDRAMSimulator(b *testing.B) {
	c, err := scalesim.New(32, 32, 480<<10)
	if err != nil {
		b.Fatal(err)
	}
	sim, err := c.SimulateNetwork(model.ByName("alex"))
	if err != nil {
		b.Fatal(err)
	}
	dsim, err := dram.New(dram.DDR4Like(4))
	if err != nil {
		b.Fatal(err)
	}
	tr := sim.Layers[1].Trace
	var bytes uint64
	for _, a := range tr.Accesses {
		bytes += uint64(a.Bytes)
	}
	b.SetBytes(int64(bytes))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dsim.RunTrace(tr)
	}
}
