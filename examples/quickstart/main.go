// Quickstart: protect a tensor with the SeDA protection unit.
//
// Demonstrates the functional core end to end: write a feature map
// through the Crypt Engine (bandwidth-aware AES-CTR) and Integ Engine
// (position-bound optBlk MACs folded into an on-chip layer MAC), read
// it back verified, then show that an attacker tampering with
// untrusted memory is caught.
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro/internal/core"
)

func main() {
	mem := core.NewMemory()
	unit, err := core.NewUnit(
		[]byte("0123456789abcdef"), // AES-128 key
		[]byte("integrity-mac-key"),
		mem,
	)
	if err != nil {
		log.Fatal(err)
	}

	// A 4 KB activation tensor for layer 0, protected at a 512 B
	// optBlk granularity.
	id := core.FmapID{Layer: 0, Fmap: 0}
	const addr, optBlk = 0x1000_0000, 512
	tensor := make([]byte, 4096)
	for i := range tensor {
		tensor[i] = byte(i % 251)
	}

	if err := unit.WriteFmap(id, addr, tensor, optBlk); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote 4 KB tensor: ciphertext in untrusted memory, layer MAC on-chip")

	// Off-chip memory holds only ciphertext.
	ct := mem.Read(addr, len(tensor))
	if bytes.Equal(ct, tensor) {
		log.Fatal("plaintext leaked to off-chip memory!")
	}
	fmt.Println("off-chip bytes differ from plaintext (confidentiality)")

	// Reading back verifies the layer MAC and decrypts.
	got, err := unit.ReadFmap(id, addr, len(tensor), optBlk)
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(got, tensor) {
		log.Fatal("round-trip mismatch")
	}
	fmt.Println("verified read returns the original tensor (integrity + decryption)")

	// An attacker flips one bit in off-chip memory...
	mem.Corrupt(addr+1234, 0x01)
	if _, err := unit.ReadFmap(id, addr, len(tensor), optBlk); err != nil {
		fmt.Println("tamper detected:", err)
	} else {
		log.Fatal("tamper NOT detected")
	}
}
