// Model provisioning: the deployment workflow for a protected model.
//
// A model owner provisions LeNet's weights into untrusted accelerator
// memory encrypted and sealed under the on-chip model MAC, runs a full
// protected inference (every tensor round-trips through verified
// off-chip memory), and checks bit-exactness against an unprotected
// reference. Then the attacker tampers with the provisioned weights
// and the next inference is rejected.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	"repro/internal/model"
	"repro/internal/nnexec"
	"repro/internal/secinfer"
)

func main() {
	net := model.LeNet()
	pipe, err := secinfer.New(net,
		[]byte("0123456789abcdef"), // AES-128 key
		[]byte("model-owner-mac-key"),
		2024, // weight seed
		256)  // optBlk
	if err != nil {
		log.Fatal(err)
	}

	// 1. Provision: weights encrypted + sealed under the model MAC.
	if err := pipe.Provision(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("provisioned %s: %d layers, %d weight bytes sealed under one on-chip model MAC\n",
		net.Full, len(net.Layers), net.TotalWeightBytes())

	// 2. Protected inference == unprotected reference, bit for bit.
	input := nnexec.NewTensor(32, 32, 1)
	rand.New(rand.NewSource(7)).Read(input.Data) //nolint:errcheck

	inCopy := nnexec.NewTensor(32, 32, 1)
	copy(inCopy.Data, input.Data)

	prot, err := pipe.Infer(input)
	if err != nil {
		log.Fatal(err)
	}
	ref, err := pipe.ReferenceInfer(inCopy)
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(prot.Data, ref.Data) {
		log.Fatal("protected and reference outputs differ")
	}
	fmt.Printf("protected inference matches unprotected reference (%d output bytes)\n",
		len(prot.Data))

	// 3. Attacker corrupts one provisioned weight byte off-chip.
	pipe.Unit().Memory().Corrupt(0x0500_0000+33, 0x80)
	if _, err := pipe.Infer(input); err != nil {
		fmt.Println("post-tamper inference rejected:", err)
	} else {
		log.Fatal("weight tamper went undetected")
	}
}
