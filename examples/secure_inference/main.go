// Secure inference: evaluate the cost of protecting ResNet-18 on the
// edge NPU under every memory-protection scheme the paper compares
// (Fig. 5/6, single-workload slice), using the full simulation
// pipeline: systolic-array schedule -> protection-scheme trace
// transformation -> DRAM timing.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro/internal/memprot"
	"repro/internal/model"
	"repro/seda"
)

func main() {
	npu := seda.EdgeNPU()
	net := model.ByName("rest")

	rows, err := seda.RunNetwork(npu, net)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s on the %s NPU (%dx%d PEs, %d KB SRAM, %.0f GB/s)\n\n",
		net.Full, npu.Name, npu.ArrayRows, npu.ArrayCols,
		npu.SRAMBytes/1024, npu.BandwidthB/1e9)

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "scheme\ttraffic overhead\tslowdown\tverdict")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%+.2f%%\t%+.2f%%\t%s\n",
			r.Scheme.Name(),
			r.TrafficOverhead()*100,
			r.PerfOverhead()*100,
			describe(r))
	}
	w.Flush() //nolint:errcheck

	sgx, _ := seda.SchemeRow(rows, memprot.SchemeSGX64)
	sd, _ := seda.SchemeRow(rows, memprot.SchemeSeDA)
	fmt.Printf("\nSwitching this deployment from SGX-64B to SeDA recovers %.2f%% of performance.\n",
		(sgx.PerfOverhead()-sd.PerfOverhead())*100)
}

func describe(r seda.RunResult) string {
	switch {
	case r.Scheme.Kind == memprot.Baseline:
		return "unprotected reference"
	case r.PerfOverhead() < 0.01:
		return "near-zero overhead"
	case r.PerfOverhead() < 0.06:
		return "moderate overhead"
	default:
		return "heavy overhead"
	}
}
