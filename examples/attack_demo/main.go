// Attack demo: mount the paper's two attacks against the functional
// protection unit and show SeDA detecting or neutralizing both.
//
// Unlike cmd/seda-attack (which exercises the primitive-level attack
// algebra), this example drives the attacks through the full
// protection-unit API: the attacker manipulates untrusted memory and
// the unit's verified reads respond.
package main

import (
	"fmt"
	"log"

	"repro/internal/aesx"
	"repro/internal/attack"
	"repro/internal/core"
)

func main() {
	secaAgainstUnit()
	repaAgainstUnit()
	replayAgainstUnit()
}

// secaAgainstUnit shows that ciphertext produced by the unit's B-AES
// crypt engine does not fall to single-element collision analysis.
func secaAgainstUnit() {
	fmt.Println("== SECA against the protection unit's ciphertext ==")
	mem := core.NewMemory()
	unit, err := core.NewUnit([]byte("0123456789abcdef"), []byte("mac-key"), mem)
	if err != nil {
		log.Fatal(err)
	}
	id := core.FmapID{Layer: 1, Fmap: 0}
	sparse := attack.SparseTensor(4096, 73, 5) // post-ReLU-like zeros
	if err := unit.WriteFmap(id, 0x2000, sparse, 512); err != nil {
		log.Fatal(err)
	}

	ct := mem.Snapshot(0x2000, len(sparse))
	var zeroGuess [16]byte
	res := attack.RunSECA(ct, sparse, zeroGuess)
	fmt.Printf("attacker recovered %d/%d segments -> %v\n\n",
		res.SegmentsRecovered, res.TotalSegments, outcome(!res.Success()))
}

// repaAgainstUnit swaps two ciphertext blocks in untrusted memory and
// shows the verified read rejecting the layer.
func repaAgainstUnit() {
	fmt.Println("== RePA against the protection unit's layer MAC ==")
	mem := core.NewMemory()
	unit, err := core.NewUnit([]byte("0123456789abcdef"), []byte("mac-key"), mem)
	if err != nil {
		log.Fatal(err)
	}
	id := core.FmapID{Layer: 2, Fmap: 0}
	data := attack.SparseTensor(8*512, 61, 9)
	if err := unit.WriteFmap(id, 0x8000, data, 512); err != nil {
		log.Fatal(err)
	}

	mem.SwapRegions(0x8000+0*512, 0x8000+5*512, 512) // the re-permutation

	_, err = unit.ReadFmap(id, 0x8000, len(data), 512)
	fmt.Printf("verified read after block swap: err=%v -> %v\n\n",
		err != nil, outcome(err != nil))
}

// replayAgainstUnit rolls a block back to a stale snapshot and shows
// the version-number binding catching it.
func replayAgainstUnit() {
	fmt.Println("== Replay (rollback) against the protection unit ==")
	mem := core.NewMemory()
	unit, err := core.NewUnit([]byte("0123456789abcdef"), []byte("mac-key"), mem)
	if err != nil {
		log.Fatal(err)
	}
	id := core.FmapID{Layer: 3, Fmap: 0}

	v1 := attack.SparseTensor(2048, 41, 1)
	if err := unit.WriteFmap(id, 0x4000, v1, 512); err != nil {
		log.Fatal(err)
	}
	stale := mem.Snapshot(0x4000, 512)

	v2 := attack.SparseTensor(2048, 41, 2)
	if err := unit.WriteFmap(id, 0x4000, v2, 512); err != nil {
		log.Fatal(err)
	}
	mem.Replay(0x4000, stale) // roll first block back

	_, err = unit.ReadFmap(id, 0x4000, len(v2), 512)
	fmt.Printf("verified read after replay: err=%v -> %v\n",
		err != nil, outcome(err != nil))

	// The counter construction behind the detection:
	_ = aesx.Counter{PA: 0x4000, VN: 2} // VN advanced; stale block was sealed under VN 1
}

func outcome(defended bool) string {
	if defended {
		return "SeDA defense holds"
	}
	return "ATTACK SUCCEEDED"
}
