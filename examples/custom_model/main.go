// Custom model: define your own network, inspect the schedule the
// systolic-array simulator picks, run the SecureLoop-style optBlk
// search per layer, and compare protection schemes on both NPUs.
//
// This is the workflow a user follows to decide how to deploy a
// proprietary model on a SeDA-protected accelerator.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro/internal/authblock"
	"repro/internal/memprot"
	"repro/internal/model"
	"repro/internal/scalesim"
	"repro/seda"
)

func main() {
	// A small keyword-spotting CNN: two convs and two dense layers.
	custom := &model.Network{
		Name: "kws",
		Full: "keyword spotting CNN",
		Layers: []model.Layer{
			model.CV("conv1", 99, 42, 10, 4, 1, 64, 2),
			model.CV("conv2", 47, 21, 3, 3, 64, 64, 1),
			model.FC("fc1", 1, 64*45*19, 128),
			model.FC("fc2", 1, 128, 12),
		},
	}
	if err := custom.Validate(); err != nil {
		log.Fatal(err)
	}

	// Inspect the schedule and the optBlk the search picks per layer
	// on the edge NPU.
	edge := seda.EdgeNPU()
	arr, err := scalesim.New(edge.ArrayRows, edge.ArrayCols, edge.SRAMBytes)
	if err != nil {
		log.Fatal(err)
	}
	sim, err := arr.SimulateNetwork(custom)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s — schedule and optBlk per layer (edge NPU)\n\n", custom.Full)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "layer\trow-tiles\tgroups\thalo rows\tifmap run(B)\toptBlk(B)")
	for _, lr := range sim.Layers {
		search := authblock.SearchLayer(lr.Trace)
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%d\n",
			lr.Layer.Name, lr.Tiling.RowTiles, lr.Tiling.Groups,
			lr.Tiling.HaloRows, lr.Tiling.IfmapRunBytes, search.Best.Block)
	}
	w.Flush() //nolint:errcheck

	// Compare deployment cost on both platforms.
	for _, npu := range []seda.NPUConfig{seda.ServerNPU(), seda.EdgeNPU()} {
		rows, err := seda.RunNetwork(npu, custom)
		if err != nil {
			log.Fatal(err)
		}
		sgx, _ := seda.SchemeRow(rows, memprot.SchemeSGX64)
		sd, _ := seda.SchemeRow(rows, memprot.SchemeSeDA)
		fmt.Printf("\n%s NPU: SGX-64B slowdown %.2f%%, SeDA slowdown %.2f%%\n",
			npu.Name, sgx.PerfOverhead()*100, sd.PerfOverhead()*100)
	}
}
