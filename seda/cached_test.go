package seda

import (
	"bytes"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/model"
	"repro/internal/rescache"
)

func newTestCache(t *testing.T) *rescache.Cache {
	t.Helper()
	c, err := rescache.New(rescache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigFingerprintStableAndDistinct(t *testing.T) {
	let, ncf := model.ByName("let"), model.ByName("ncf")
	a := ConfigFingerprint(EdgeNPU(), let)
	if b := ConfigFingerprint(EdgeNPU(), let); a != b {
		t.Fatalf("fingerprint unstable: %s vs %s", a, b)
	}
	if len(a) != 64 {
		t.Fatalf("fingerprint %q is not hex sha256", a)
	}
	distinct := map[string]string{a: "edge/let"}
	for name, fp := range map[string]string{
		"server/let": ConfigFingerprint(ServerNPU(), let),
		"edge/ncf":   ConfigFingerprint(EdgeNPU(), ncf),
	} {
		if prev, dup := distinct[fp]; dup {
			t.Fatalf("fingerprint collision: %s and %s", prev, name)
		}
		distinct[fp] = name
	}
	// The NPU's memory system is part of the fingerprint even when the
	// compute array matches.
	tweaked := EdgeNPU()
	tweaked.BandwidthB *= 2
	if ConfigFingerprint(tweaked, let) == a {
		t.Fatal("bandwidth change not reflected in fingerprint")
	}
}

func TestRunNetworkCachedMatchesFresh(t *testing.T) {
	c := newTestCache(t)
	npu, net := EdgeNPU(), model.ByName("let")

	fresh, err := RunNetworkOpts(npu, net, DefaultSuiteOptions())
	if err != nil {
		t.Fatal(err)
	}
	got, hit, err := RunNetworkCached(c, npu, net, DefaultSuiteOptions())
	if err != nil || hit {
		t.Fatalf("first cached run: hit=%v err=%v", hit, err)
	}
	assertRowsEqual(t, got, fresh)

	again, hit, err := RunNetworkCached(c, npu, net, DefaultSuiteOptions())
	if err != nil || !hit {
		t.Fatalf("second cached run: hit=%v err=%v", hit, err)
	}
	assertRowsEqual(t, again, fresh)
	if st := c.Stats(); st.Computes != 1 {
		t.Fatalf("stats = %+v, want 1 compute", st)
	}
}

// Identical concurrent evaluations must coalesce onto exactly one
// pipeline run — the serving layer's core guarantee. Runs under
// `go test -race -short`.
func TestRunNetworkCachedSingleflight(t *testing.T) {
	c := newTestCache(t)
	npu, net := EdgeNPU(), model.ByName("let")
	const callers = 8

	var wg sync.WaitGroup
	results := make([][]RunResult, callers)
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], _, errs[i] = RunNetworkCached(c, npu, net, DefaultSuiteOptions())
		}(i)
	}
	wg.Wait()

	for i := range errs {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
	}
	st := c.Stats()
	if st.Computes != 1 {
		t.Fatalf("%d concurrent identical sweeps ran %d pipeline evaluations, want 1 (stats %+v)",
			callers, st.Computes, st)
	}
	for i := 1; i < callers; i++ {
		assertRowsEqual(t, results[i], results[0])
	}
}

func TestRunSuiteCachedPartialReuse(t *testing.T) {
	c := newTestCache(t)
	npu := EdgeNPU()
	let, ncf := model.ByName("let"), model.ByName("ncf")

	// Prime the cache with one workload, then sweep two: only the
	// uncached one evaluates.
	if _, _, err := RunNetworkCached(c, npu, let, DefaultSuiteOptions()); err != nil {
		t.Fatal(err)
	}
	suite, err := RunSuiteCached(c, npu, []*model.Network{let, ncf}, DefaultSuiteOptions())
	if err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Computes != 2 || st.Hits != 1 {
		t.Fatalf("stats = %+v, want 2 computes (let, ncf) and 1 hit (let reused)", st)
	}

	want, err := RunSuiteOn(npu, []*model.Network{let, ncf})
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := suite.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := want.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("cached suite JSON differs from fresh suite JSON")
	}
}

func TestRunSuiteCachedNilCacheFallsBack(t *testing.T) {
	npu := EdgeNPU()
	nets := []*model.Network{model.ByName("let")}
	suite, err := RunSuiteCached(nil, npu, nets, DefaultSuiteOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(suite.Rows["let"]) != len(Schemes()) {
		t.Fatalf("rows = %d, want %d", len(suite.Rows["let"]), len(Schemes()))
	}
}

func TestRunNetworkCachedDiskWarmStart(t *testing.T) {
	dir := t.TempDir()
	npu, net := EdgeNPU(), model.ByName("let")

	c1, err := rescache.New(rescache.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	fresh, _, err := RunNetworkCached(c1, npu, net, DefaultSuiteOptions())
	if err != nil {
		t.Fatal(err)
	}

	// A new process (fresh cache, same dir) serves from disk.
	c2, err := rescache.New(rescache.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	warm, hit, err := RunNetworkCached(c2, npu, net, DefaultSuiteOptions())
	if err != nil || !hit {
		t.Fatalf("warm start: hit=%v err=%v", hit, err)
	}
	assertRowsEqual(t, warm, fresh)
	if st := c2.Stats(); st.DiskHits != 1 || st.Computes != 0 {
		t.Fatalf("stats = %+v, want pure disk hit", st)
	}
}

func assertRowsEqual(t *testing.T, got, want []RunResult) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("rows = %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("row %d:\n got %+v\nwant %+v", i, got[i], want[i])
		}
	}
}

// A damaged disk entry must not wedge the config: the lookup evicts
// the corrupt blob, recomputes, and repairs both cache layers. Both
// unparseable blobs and parseable-but-wrong-shape blobs (e.g. "[]")
// must heal.
func TestRunNetworkCachedHealsCorruptDiskEntry(t *testing.T) {
	for _, garbage := range []string{"{not json", "[]", "null"} {
		t.Run(garbage, func(t *testing.T) { testHealsCorruptEntry(t, garbage) })
	}
}

func testHealsCorruptEntry(t *testing.T, garbage string) {
	dir := t.TempDir()
	npu, net := EdgeNPU(), model.ByName("let")
	key := ConfigFingerprint(npu, net)
	if err := os.WriteFile(filepath.Join(dir, key), []byte(garbage), 0o644); err != nil {
		t.Fatal(err)
	}

	c, err := rescache.New(rescache.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	rows, _, err := RunNetworkCached(c, npu, net, DefaultSuiteOptions())
	if err != nil {
		t.Fatalf("corrupt entry not healed: %v", err)
	}
	want, err := RunNetworkOpts(npu, net, DefaultSuiteOptions())
	if err != nil {
		t.Fatal(err)
	}
	assertRowsEqual(t, rows, want)
	if st := c.Stats(); st.Computes != 1 {
		t.Fatalf("stats = %+v, want 1 recompute", st)
	}

	// The repaired disk entry serves a fresh process cleanly.
	c2, err := rescache.New(rescache.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	again, hit, err := RunNetworkCached(c2, npu, net, DefaultSuiteOptions())
	if err != nil || !hit {
		t.Fatalf("repaired entry: hit=%v err=%v", hit, err)
	}
	assertRowsEqual(t, again, want)
}
