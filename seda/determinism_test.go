package seda

import (
	"reflect"
	"testing"

	"repro/internal/model"
)

// TestSuiteDeterminism asserts that the fully parallel pipeline
// (workload worker pool + concurrent schemes + concurrent DRAM channel
// drain) produces byte-identical RunResult rows to the forced
// single-goroutine run. This is the contract that lets every consumer
// default to the parallel path.
func TestSuiteDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second DRAM simulation")
	}
	nets := []*model.Network{
		model.ByName("let"), model.ByName("ncf"), model.ByName("sent"),
	}
	npu := EdgeNPU()

	par, err := RunSuiteOpts(npu, nets, DefaultSuiteOptions())
	if err != nil {
		t.Fatal(err)
	}
	seq, err := RunSuiteOpts(npu, nets, SequentialOptions())
	if err != nil {
		t.Fatal(err)
	}

	if len(par.Rows) != len(seq.Rows) {
		t.Fatalf("row sets differ: %d vs %d workloads", len(par.Rows), len(seq.Rows))
	}
	for name, seqRows := range seq.Rows {
		parRows, ok := par.Rows[name]
		if !ok {
			t.Fatalf("parallel run missing workload %s", name)
		}
		if !reflect.DeepEqual(parRows, seqRows) {
			t.Errorf("%s: parallel rows differ from sequential:\npar: %+v\nseq: %+v",
				name, parRows, seqRows)
		}
	}

	// Re-running the parallel pipeline must also be self-consistent.
	par2, err := RunSuiteOpts(npu, nets, SuiteOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(par.Rows, par2.Rows) {
		t.Error("two parallel runs disagree")
	}
}

// TestRunNetworkOptsSequentialMatches covers the single-network entry
// point the CLI uses with -seq.
func TestRunNetworkOptsSequentialMatches(t *testing.T) {
	npu := EdgeNPU()
	net := model.ByName("let")
	par, err := RunNetworkOpts(npu, net, DefaultSuiteOptions())
	if err != nil {
		t.Fatal(err)
	}
	seq, err := RunNetworkOpts(npu, net, SequentialOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(par, seq) {
		t.Errorf("parallel rows differ from sequential:\npar: %+v\nseq: %+v", par, seq)
	}
}
