package seda

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"repro/internal/memprot"
)

// This file is the JSON face of the evaluation pipeline, shared by
// `seda-sweep -json` and the seda-serve HTTP server, and also the
// serialization the result cache stores (see cached.go). Field order
// is fixed by the struct declarations and every value round-trips
// exactly (encoding/json emits the shortest float form that parses
// back to the same float64), so marshaling cached rows is
// byte-identical to marshaling freshly computed ones.

// runResultJSON mirrors RunResult with a stable wire field order and
// the scheme flattened to its display name.
type runResultJSON struct {
	NPU           string  `json:"npu"`
	Network       string  `json:"network"`
	Scheme        string  `json:"scheme"`
	DataBytes     uint64  `json:"data_bytes"`
	MetaBytes     uint64  `json:"meta_bytes"`
	NormTraffic   float64 `json:"norm_traffic"`
	ExecCycles    uint64  `json:"exec_cycles"`
	NormPerf      float64 `json:"norm_perf"`
	ComputeCycles uint64  `json:"compute_cycles"`
}

// MarshalJSON emits the row with scheme as its figure name.
func (r RunResult) MarshalJSON() ([]byte, error) {
	return json.Marshal(runResultJSON{
		NPU:           r.NPU,
		Network:       r.Network,
		Scheme:        r.Scheme.Name(),
		DataBytes:     r.DataBytes,
		MetaBytes:     r.MetaBytes,
		NormTraffic:   r.NormTraffic,
		ExecCycles:    r.ExecCycles,
		NormPerf:      r.NormPerf,
		ComputeCycles: r.ComputeCycles,
	})
}

// UnmarshalJSON parses a row, resolving the scheme by name.
func (r *RunResult) UnmarshalJSON(b []byte) error {
	var w runResultJSON
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	scheme, err := SchemeByName(w.Scheme)
	if err != nil {
		return err
	}
	*r = RunResult{
		NPU:           w.NPU,
		Network:       w.Network,
		Scheme:        scheme,
		DataBytes:     w.DataBytes,
		MetaBytes:     w.MetaBytes,
		NormTraffic:   w.NormTraffic,
		ExecCycles:    w.ExecCycles,
		NormPerf:      w.NormPerf,
		ComputeCycles: w.ComputeCycles,
	}
	return nil
}

// SchemeByName resolves a scheme display name ("SGX-64B", "SeDA", ...)
// case-insensitively against Schemes().
func SchemeByName(name string) (memprot.Scheme, error) {
	for _, s := range Schemes() {
		if strings.EqualFold(s.Name(), name) {
			return s, nil
		}
	}
	return memprot.Scheme{}, fmt.Errorf("seda: unknown scheme %q (known: %s)",
		name, strings.Join(schemeNames(), ", "))
}

func schemeNames() []string {
	schemes := Schemes()
	names := make([]string, len(schemes))
	for i, s := range schemes {
		names[i] = s.Name()
	}
	return names
}

// suiteJSON is the wire form of a SuiteResult: workloads in figure
// order as an array (not a map, whose key order encoding/json would
// sort alphabetically), per-scheme averages aligned with the schemes
// array.
type suiteJSON struct {
	NPU             string         `json:"npu"`
	PipelineVersion string         `json:"pipeline_version"`
	Schemes         []string       `json:"schemes"`
	Workloads       []string       `json:"workloads"`
	Rows            []suiteRowJSON `json:"rows"`
	AvgNormTraffic  []float64      `json:"avg_norm_traffic"`
	AvgNormPerf     []float64      `json:"avg_norm_perf"`
	// HeadlineImprovementPP is the abstract's headline: percentage
	// points of average performance overhead SeDA removes vs SGX-64B.
	HeadlineImprovementPP float64 `json:"headline_improvement_pp"`
}

type suiteRowJSON struct {
	Workload string      `json:"workload"`
	Results  []RunResult `json:"results"`
}

func (s *SuiteResult) toJSON() suiteJSON {
	schemes := Schemes()
	out := suiteJSON{
		NPU:                   s.NPU.Name,
		PipelineVersion:       PipelineVersion,
		Schemes:               schemeNames(),
		Workloads:             s.Workloads(),
		AvgNormTraffic:        make([]float64, len(schemes)),
		AvgNormPerf:           make([]float64, len(schemes)),
		HeadlineImprovementPP: s.HeadlineImprovement(),
	}
	for i, sc := range schemes {
		out.AvgNormTraffic[i] = s.AvgNormTraffic(sc)
		out.AvgNormPerf[i] = s.AvgNormPerf(sc)
	}
	for _, name := range out.Workloads {
		out.Rows = append(out.Rows, suiteRowJSON{Workload: name, Results: s.Rows[name]})
	}
	return out
}

// WriteJSON emits the suite as one indented JSON object with a stable
// field order, terminated by a newline. Output is deterministic:
// identical suites (fresh or cache-round-tripped) serialize to
// identical bytes.
func (s *SuiteResult) WriteJSON(w io.Writer) error {
	return encodeJSON(w, s.toJSON())
}

// WriteSuitesJSON emits several suites (e.g. server and edge) as one
// JSON array, in argument order.
func WriteSuitesJSON(w io.Writer, suites ...*SuiteResult) error {
	arr := make([]suiteJSON, len(suites))
	for i, s := range suites {
		arr[i] = s.toJSON()
	}
	return encodeJSON(w, arr)
}

func encodeJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
