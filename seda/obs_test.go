package seda

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/model"
	"repro/internal/obs"
)

// TestTracedSuiteOutputByteIdentical pins the observability
// invariant: arming a tracer must never move a byte of pipeline
// output. The span machinery only measures; it has no way to reorder
// or perturb the evaluation.
func TestTracedSuiteOutputByteIdentical(t *testing.T) {
	nets := []*model.Network{model.ByName("let"), model.ByName("ncf")}
	npu := EdgeNPU()

	plain, err := RunSuiteOpts(npu, nets, SequentialOptions())
	if err != nil {
		t.Fatal(err)
	}

	ctx, tr := obs.NewTracer(context.Background(), "test")
	defer tr.Finish()
	traced, err := RunSuiteOptsCtx(ctx, npu, nets, SequentialOptions())
	if err != nil {
		t.Fatal(err)
	}

	var a, b bytes.Buffer
	if err := plain.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := traced.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("traced suite JSON differs from untraced")
	}
}

// TestSuiteSpanTree checks the shape and arithmetic of a traced
// sequential sweep: suite → workload → {scalesim, protect, dram}, and
// at every level the children's durations fit inside the parent's.
func TestSuiteSpanTree(t *testing.T) {
	nets := []*model.Network{model.ByName("let"), model.ByName("ncf")}
	ctx, tr := obs.NewTracer(context.Background(), "test")
	if _, err := RunSuiteOptsCtx(ctx, EdgeNPU(), nets, SequentialOptions()); err != nil {
		t.Fatal(err)
	}
	tr.Finish()

	tree := tr.Tree()
	if len(tree.Spans) != 1 || tree.Spans[0].Name != obs.StageSuite {
		t.Fatalf("root children: %+v", tree.Spans)
	}
	suite := tree.Spans[0]
	// Workload spans carry the workload name as detail, so the two
	// workloads stay distinct nodes instead of merging.
	if len(suite.Spans) != 2 {
		t.Fatalf("suite children (want 2 workload nodes): %+v", suite.Spans)
	}
	var dramCount int
	for _, workload := range suite.Spans {
		if workload.Name != obs.StageWorkload || workload.Detail == "" {
			t.Fatalf("suite child is not a detailed workload span: %+v", workload)
		}
		var childMs float64
		seen := map[string]bool{}
		for _, sp := range workload.Spans {
			seen[sp.Name] = true
			childMs += sp.Ms
			if sp.Name == obs.StageDRAM {
				n := sp.Count
				if n == 0 {
					n = 1
				}
				dramCount += n
			}
		}
		for _, want := range []string{obs.StageScalesim, obs.StageProtect, obs.StageDRAM} {
			if !seen[want] {
				t.Errorf("workload %s span missing %s child: %+v", workload.Detail, want, workload.Spans)
			}
		}
		// Sequential execution: stage durations nest strictly inside
		// the workload span, so their sum cannot exceed it (1ms slack
		// for the µs rounding of each exported node).
		if childMs > workload.Ms+1 {
			t.Errorf("workload %s: stage durations %.3fms exceed workload span %.3fms",
				workload.Detail, childMs, workload.Ms)
		}
	}
	// DRAM spans carry the scheme name as detail: 6 schemes × 2
	// workloads, one span each.
	if want := 2 * len(Schemes()); dramCount != want {
		t.Errorf("dram span count %d, want %d", dramCount, want)
	}
}

// TestCachedSuiteSpansAttachThroughCache: a cold cached sweep routes
// every evaluation through the result cache's detached lead
// goroutine; its get/compute spans must still land under the leading
// request's workload spans.
func TestCachedSuiteSpansAttachThroughCache(t *testing.T) {
	cache := newTestCache(t)
	nets := []*model.Network{model.ByName("let")}
	ctx, tr := obs.NewTracer(context.Background(), "test")
	if _, err := RunSuiteCachedCtx(ctx, cache, EdgeNPU(), nets, SequentialOptions()); err != nil {
		t.Fatal(err)
	}
	tr.Finish()

	var found func(sp obs.SpanJSON, name string) bool
	found = func(sp obs.SpanJSON, name string) bool {
		if sp.Name == name {
			return true
		}
		for _, c := range sp.Spans {
			if found(c, name) {
				return true
			}
		}
		return false
	}
	tree := tr.Tree()
	for _, want := range []string{obs.StageCacheGet, obs.StageCompute, obs.StageDRAM} {
		if !found(tree, want) {
			t.Errorf("cached sweep trace missing %s span:\n%s", want, mustJSON(t, tr))
		}
	}
}

func mustJSON(t *testing.T, tr *obs.Tracer) string {
	t.Helper()
	return string(tr.JSON())
}
