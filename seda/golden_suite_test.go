package seda

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/model"
)

// TestSuiteJSONGolden byte-compares the full 13-workload suite JSON of
// both Table II presets against goldens captured immediately before
// the parametric-platform refactor (PipelineVersion "3"). Only the
// pipeline_version metadata line is allowed to differ — the rows, the
// averages and the headline must be byte-identical, which is the
// refactor's core promise: opening the config space moved no figure.
//
// Regenerating the goldens requires deliberately re-capturing both
// files; there is no update flag, so an accidental figure change
// cannot be "fixed" by rerunning the test.
func TestSuiteJSONGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full two-NPU sweep in -short mode")
	}
	for _, npu := range NPUPresets() {
		npu := npu
		t.Run(npu.Name, func(t *testing.T) {
			t.Parallel()
			golden, err := os.ReadFile(filepath.Join("testdata", "suite_"+npu.Name+".json"))
			if err != nil {
				t.Fatal(err)
			}
			// The goldens were captured at pipeline version 3; the
			// version metadata is the one sanctioned difference.
			golden = bytes.Replace(golden,
				[]byte(`"pipeline_version": "3"`),
				[]byte(fmt.Sprintf(`"pipeline_version": %q`, PipelineVersion)), 1)

			suite, err := RunSuiteOpts(npu, model.All(), DefaultSuiteOptions())
			if err != nil {
				t.Fatal(err)
			}
			var got bytes.Buffer
			if err := suite.WriteJSON(&got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got.Bytes(), golden) {
				t.Fatalf("%s suite JSON drifted from the pre-refactor golden (first diff at byte %d)",
					npu.Name, firstDiff(got.Bytes(), golden))
			}
		})
	}
}

func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}
