package seda

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/dram"
	"repro/internal/memprot"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/scalesim"
)

// protArena recycles protection-overlay storage across every network
// evaluated in this process (see memprot.Arena). Results never escape
// RunNetworkOpts — only aggregated RunResult rows do — so the overlays
// can be released as soon as the DRAM phase has consumed them.
var protArena = memprot.NewArena()

// dramArena shares DRAM scratch state (per-channel span queues, bank
// arrays, window rings) across every simulator in the process: the six
// schemes of a workload and all workloads of a sweep draw from one
// pool, so after the first workload the buffers are grown once and
// only refilled. The geometry check in dram.Arena keeps the sharing
// safe if NPUs with different channel counts are ever mixed in one
// process.
var dramArena = dram.NewArena()

// optBlkCache shares SeDA's per-layer authblock searches across every
// evaluation in the process, keyed by run-set geometry: the server and
// edge NPU sweeps of one seda-sweep or seda-serve process reuse one
// search wherever their layer tilings coincide, and repeated
// evaluations of the same NPU hit outright. Cached results are
// bit-identical to fresh searches, so output never depends on cache
// state.
var optBlkCache = memprot.NewOptBlkCache()

// RunResult is one (NPU, network, scheme) evaluation.
type RunResult struct {
	NPU     string
	Network string
	Scheme  memprot.Scheme

	DataBytes uint64 // baseline tensor traffic
	MetaBytes uint64 // security-metadata + over-fetch traffic

	// NormTraffic is total traffic normalized to the unprotected
	// baseline (Fig. 5's y-axis; baseline = 1.0).
	NormTraffic float64

	ExecCycles uint64
	// NormPerf is baseline execution time divided by this scheme's
	// (Fig. 6's y-axis; baseline = 1.0, protected schemes <= 1).
	NormPerf float64

	// ComputeCycles is the scheme-independent compute time, kept for
	// bound checks.
	ComputeCycles uint64
}

// TrafficOverhead returns NormTraffic - 1.
func (r RunResult) TrafficOverhead() float64 { return r.NormTraffic - 1 }

// PerfOverhead returns the slowdown 1 - NormPerf.
func (r RunResult) PerfOverhead() float64 { return 1 - r.NormPerf }

// RunNetwork evaluates every scheme on one network and returns one
// row per scheme, ordered as Schemes() (baseline last).
func RunNetwork(npu NPUConfig, net *model.Network) ([]RunResult, error) {
	return RunNetworkOpts(npu, net, DefaultSuiteOptions())
}

// RunNetworkOpts evaluates every scheme on one network under explicit
// execution options and returns one row per scheme, ordered as
// Schemes() (baseline last).
//
// The evaluation is built around a shared data spine: the scalesim
// trace is walked once by memprot.ProtectAll, which hands every scheme
// the same read-only data stream plus a per-scheme metadata overlay.
// The DRAM phase then consumes spine+overlay pairs directly, with all
// six schemes drawing their scratch queues from one shared arena.
func RunNetworkOpts(npu NPUConfig, net *model.Network, opts SuiteOptions) ([]RunResult, error) {
	return RunNetworkOptsCtx(context.Background(), npu, net, opts)
}

// RunNetworkOptsCtx is RunNetworkOpts under a caller context,
// propagated into the protection walk (checked per layer) and the DRAM
// drain loops (checked every few thousand scheduler picks). A
// cancelled evaluation returns ctx.Err() with no partial rows; the
// context adds no measurable work when it cannot be cancelled
// (context.Background), so the wrappers cost nothing.
func RunNetworkOptsCtx(ctx context.Context, npu NPUConfig, net *model.Network, opts SuiteOptions) ([]RunResult, error) {
	if err := npu.Validate(); err != nil {
		return nil, err
	}
	arr, err := npu.arrayConfig()
	if err != nil {
		return nil, err
	}
	ssp := obs.StartChild(ctx, obs.StageScalesim)
	sim, err := arr.SimulateNetwork(net)
	ssp.End()
	if err != nil {
		return nil, err
	}

	// One pass over each layer's trace covers all schemes. Overlay
	// storage is drawn from a process-wide arena: on a sweep, each
	// workload refills the buffers the previous workload's overlays
	// grew, so the protection phase allocates almost nothing in steady
	// state.
	schemes := Schemes()
	popts := memprot.DefaultOptions()
	popts.OptBlkCache = optBlkCache
	prots, err := memprot.ProtectAllArenaCtx(ctx, schemes, sim, popts, protArena)
	if err != nil {
		return nil, err
	}
	defer protArena.Release(prots)

	// DRAM timing per scheme. Schemes are independent given their
	// overlay streams; they run concurrently (each owns its DRAM
	// model, all sharing the process-wide scratch arena) unless the
	// options force a single goroutine. Rows land in fixed slots, so
	// scheduling never affects output order.
	rows := make([]RunResult, len(schemes))
	errs := make([]error, len(schemes))
	if opts.SequentialSchemes {
		for i := range schemes {
			rows[i], errs[i] = runScheme(ctx, npu, net, sim, prots[i], opts)
			if errs[i] != nil {
				break
			}
		}
	} else {
		var wg sync.WaitGroup
		for i := range schemes {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				rows[i], errs[i] = runScheme(ctx, npu, net, sim, prots[i], opts)
			}(i)
		}
		wg.Wait()
	}
	for _, e := range errs {
		if e != nil {
			return nil, e
		}
	}

	base, err := SchemeRow(rows, memprot.SchemeBaseline)
	if err != nil {
		return nil, err
	}
	for i := range rows {
		rows[i].NormTraffic = safeRatio(float64(rows[i].DataBytes+rows[i].MetaBytes), float64(base.DataBytes))
		rows[i].NormPerf = safeRatio(float64(base.ExecCycles), float64(rows[i].ExecCycles))
	}
	return rows, nil
}

func safeRatio(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	return num / den
}

// runScheme runs one scheme's protected layers (shared spine plus
// per-scheme overlay) through the DRAM timing model. Execution time is
// the sum over layers of max(compute, memory): the accelerator
// double-buffers, so within a layer compute and DRAM overlap, but
// layer boundaries synchronize.
func runScheme(ctx context.Context, npu NPUConfig, net *model.Network, sim *scalesim.NetworkResult, prot *memprot.Result, opts SuiteOptions) (RunResult, error) {
	ctx, span := obs.Start(ctx, obs.StageDRAM)
	span.SetDetail(prot.Scheme.Name())
	defer span.End()
	dsim, err := dram.New(npu.DRAMConfig())
	if err != nil {
		return RunResult{}, err
	}
	dsim.SetSequentialDrain(opts.SequentialDRAM)
	dsim.SetArena(dramArena)

	row := RunResult{
		NPU:     npu.Name,
		Network: net.Name,
		Scheme:  prot.Scheme,
	}
	for i := range prot.Layers {
		pl := &prot.Layers[i]
		st, err := dsim.RunOverlayCtx(ctx, pl.Spine, pl.Deltas)
		if err != nil {
			return RunResult{}, err
		}
		compute := sim.Layers[i].ComputeCycles
		layerCycles := st.Cycles
		if compute > layerCycles {
			layerCycles = compute
		}
		row.ExecCycles += layerCycles
		row.ComputeCycles += compute
		row.DataBytes += pl.Overhead.DataBytes
		row.MetaBytes += pl.Overhead.MetaBytes()
	}
	return row, nil
}

// SchemeRow finds the row for a scheme in RunNetwork output.
func SchemeRow(rows []RunResult, s memprot.Scheme) (RunResult, error) {
	for _, r := range rows {
		if r.Scheme == s {
			return r, nil
		}
	}
	return RunResult{}, fmt.Errorf("seda: scheme %s not in rows", s.Name())
}
