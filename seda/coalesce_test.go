package seda

import (
	"reflect"
	"testing"

	"repro/internal/dram"
	"repro/internal/memprot"
	"repro/internal/model"
	"repro/internal/trace"
)

// TestCoalescedOverlaysDRAMEquivalence is the coalescing invariant's
// property test at pipeline scale: for both NPUs and all six schemes,
// a scheme's coalesced overlay must drive the DRAM model to
// bit-identical Stats as the raw (uncoalesced) overlay, layer by
// layer. It also asserts the coalescing actually bites — the SGX
// schemes' metadata-heavy overlays must shrink — so the equivalence is
// never trivially satisfied by coalescing nothing.
func TestCoalescedOverlaysDRAMEquivalence(t *testing.T) {
	rawOpts := memprot.DefaultOptions()
	rawOpts.CoalesceOverlays = false
	coalOpts := memprot.DefaultOptions()
	if !coalOpts.CoalesceOverlays {
		t.Fatal("DefaultOptions must enable coalescing")
	}

	for _, npu := range []NPUConfig{ServerNPU(), EdgeNPU()} {
		for _, name := range []string{"ncf", "let"} {
			net := model.ByName(name)
			if net == nil {
				t.Fatalf("unknown workload %q", name)
			}
			arr, err := npu.arrayConfig()
			if err != nil {
				t.Fatal(err)
			}
			sim, err := arr.SimulateNetwork(net)
			if err != nil {
				t.Fatal(err)
			}
			raws, err := memprot.ProtectAll(Schemes(), sim, rawOpts)
			if err != nil {
				t.Fatal(err)
			}
			coals, err := memprot.ProtectAll(Schemes(), sim, coalOpts)
			if err != nil {
				t.Fatal(err)
			}
			var sgxShrunk bool
			for k := range raws {
				scheme := raws[k].Scheme
				var rawLen, coalLen int
				for i := range raws[k].Layers {
					rpl := &raws[k].Layers[i]
					cpl := &coals[k].Layers[i]
					rawLen += rpl.Deltas.Len()
					coalLen += cpl.Deltas.Len()
					if rpl.Overhead != cpl.Overhead {
						t.Errorf("%s/%s/%s layer %d: overhead diverged: raw %+v coalesced %+v",
							npu.Name, name, scheme.Name(), i, rpl.Overhead, cpl.Overhead)
					}
					a, err := dram.New(npu.DRAMConfig())
					if err != nil {
						t.Fatal(err)
					}
					b, err := dram.New(npu.DRAMConfig())
					if err != nil {
						t.Fatal(err)
					}
					want := a.RunOverlay(rpl.Spine, rpl.Deltas)
					got := b.RunOverlay(cpl.Spine, cpl.Deltas)
					if !reflect.DeepEqual(got, want) {
						t.Errorf("%s/%s/%s layer %d: coalesced stats %+v != raw %+v",
							npu.Name, name, scheme.Name(), i, got, want)
					}
				}
				if coalLen > rawLen {
					t.Errorf("%s/%s/%s: coalesced overlay larger than raw (%d > %d)",
						npu.Name, name, scheme.Name(), coalLen, rawLen)
				}
				if scheme.Kind == memprot.SGX && coalLen < rawLen {
					sgxShrunk = true
				}
			}
			if !sgxShrunk {
				t.Errorf("%s/%s: no SGX overlay shrank — coalescing never fired", npu.Name, name)
			}
		}
	}
}

// TestCoalescedMaterializedTraceConserved: flattening a coalesced
// overlay yields the same byte totals per class as the raw one, so
// trace-level consumers (stats, dumps) agree on every aggregate even
// though entry counts differ.
func TestCoalescedMaterializedTraceConserved(t *testing.T) {
	rawOpts := memprot.DefaultOptions()
	rawOpts.CoalesceOverlays = false

	npu := EdgeNPU()
	net := model.ByName("ncf")
	arr, err := npu.arrayConfig()
	if err != nil {
		t.Fatal(err)
	}
	sim, err := arr.SimulateNetwork(net)
	if err != nil {
		t.Fatal(err)
	}
	raws, err := memprot.ProtectAll(Schemes(), sim, rawOpts)
	if err != nil {
		t.Fatal(err)
	}
	coals, err := memprot.ProtectAll(Schemes(), sim, memprot.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for k := range raws {
		for i := range raws[k].Layers {
			rst := raws[k].Layers[i].Materialize().ComputeStats()
			cst := coals[k].Layers[i].Materialize().ComputeStats()
			if rst.BytesByClass != cst.BytesByClass ||
				rst.ReadBytes != cst.ReadBytes || rst.WriteBytes != cst.WriteBytes ||
				rst.HighestCycle != cst.HighestCycle {
				t.Errorf("%s layer %d: materialized totals diverged:\nraw  %+v\ncoal %+v",
					raws[k].Scheme.Name(), i, rst, cst)
			}
		}
	}
}

// TestRunNetworkMatchesRawOverlays pins the end-to-end figure
// equivalence the coalescing claims: RunNetworkOpts (which evaluates
// with DefaultOptions, coalescing on) must produce rows identical to
// an evaluation forced through raw overlays.
func TestRunNetworkMatchesRawOverlays(t *testing.T) {
	npu := EdgeNPU()
	net := model.ByName("ncf")
	rows, err := RunNetworkOpts(npu, net, SequentialOptions())
	if err != nil {
		t.Fatal(err)
	}

	// Re-evaluate by hand with raw overlays, mirroring runScheme.
	rawOpts := memprot.DefaultOptions()
	rawOpts.CoalesceOverlays = false
	arr, err := npu.arrayConfig()
	if err != nil {
		t.Fatal(err)
	}
	sim, err := arr.SimulateNetwork(net)
	if err != nil {
		t.Fatal(err)
	}
	raws, err := memprot.ProtectAll(Schemes(), sim, rawOpts)
	if err != nil {
		t.Fatal(err)
	}
	for k, prot := range raws {
		dsim, err := dram.New(npu.DRAMConfig())
		if err != nil {
			t.Fatal(err)
		}
		dsim.SetSequentialDrain(true)
		var exec uint64
		var data, meta uint64
		for i := range prot.Layers {
			pl := &prot.Layers[i]
			st := dsim.RunOverlay(pl.Spine, pl.Deltas)
			layerCycles := st.Cycles
			if c := sim.Layers[i].ComputeCycles; c > layerCycles {
				layerCycles = c
			}
			exec += layerCycles
			data += pl.Overhead.DataBytes
			meta += pl.Overhead.MetaBytes()
		}
		if rows[k].ExecCycles != exec || rows[k].DataBytes != data || rows[k].MetaBytes != meta {
			t.Errorf("%s: coalesced pipeline row (exec=%d data=%d meta=%d) != raw re-evaluation (exec=%d data=%d meta=%d)",
				prot.Scheme.Name(), rows[k].ExecCycles, rows[k].DataBytes, rows[k].MetaBytes, exec, data, meta)
		}
	}
}

// trace import keeps the coalescing quantum visible to this test: the
// DRAM burst size of both NPUs must divide it, or the invariant the
// equivalence rests on would not apply.
func TestCoalesceQuantumCoversNPUBursts(t *testing.T) {
	for _, npu := range []NPUConfig{ServerNPU(), EdgeNPU()} {
		if trace.CoalesceQuantum%npu.DRAMConfig().BurstBytes != 0 {
			t.Errorf("%s: burst %dB does not divide the coalescing quantum %dB",
				npu.Name, npu.DRAMConfig().BurstBytes, trace.CoalesceQuantum)
		}
	}
}
