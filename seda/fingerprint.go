package seda

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"

	"repro/internal/model"
)

// PipelineVersion identifies the evaluation semantics of this build:
// the scalesim schedule, the protection-scheme models, and the DRAM
// timing model. It is part of every cache fingerprint, so bump it
// whenever a change moves any figure number — stale cached results
// then stop matching instead of being served. The current value
// corresponds to the post-PR-2 pipeline (closed-bank init, SGX drain
// and region-offset fixes).
const PipelineVersion = "3"

// ConfigFingerprint returns the canonical SHA-256 (hex) of everything
// that determines a RunNetwork evaluation's output: the pipeline
// version, the full NPU configuration, the scheme set in plot order,
// and the network's canonical topology encoding. It is the
// content-address under which internal/rescache stores the result
// rows: equal fingerprints imply byte-identical results, and any
// change to an input changes the fingerprint.
func ConfigFingerprint(npu NPUConfig, net *model.Network) string {
	h := sha256.New()
	fmt.Fprintf(h, "seda/v%s\n", PipelineVersion)
	// Floats are encoded exactly (hex mantissa), not via a rounded
	// decimal form, so configs differing below print precision still
	// fingerprint apart.
	fmt.Fprintf(h, "npu|%d:%s|%d|%d|%d|%s|%s|%d\n",
		len(npu.Name), npu.Name, npu.ArrayRows, npu.ArrayCols, npu.SRAMBytes,
		strconv.FormatFloat(npu.FreqHz, 'x', -1, 64),
		strconv.FormatFloat(npu.BandwidthB, 'x', -1, 64),
		npu.Channels)
	fmt.Fprint(h, "schemes")
	for _, s := range Schemes() {
		fmt.Fprintf(h, "|%d:%d", s.Kind, s.Block)
	}
	fmt.Fprintln(h)
	h.Write(net.CanonicalBytes(nil)) //nolint:errcheck
	return hex.EncodeToString(h.Sum(nil))
}
