package seda

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"

	"repro/internal/model"
)

// PipelineVersion identifies the evaluation semantics of this build:
// the scalesim schedule, the protection-scheme models, and the DRAM
// timing model. It is part of every cache fingerprint, so bump it
// whenever a change moves any figure number — stale cached results
// then stop matching instead of being served. "4" corresponds to the
// parametric-platform pipeline: the fingerprint now covers the full
// derived dram.Config (geometry knobs included), so entries written
// under the old, narrower key format can never alias a parametric
// configuration. Figure numbers are unchanged from "3" (the Table II
// presets derive the identical DRAM config — pinned by
// TestDerivedDRAMConfigGolden and the suite JSON goldens).
const PipelineVersion = "4"

// ConfigFingerprint returns the canonical SHA-256 (hex) of everything
// that determines a RunNetwork evaluation's output: the pipeline
// version, the NPU configuration with its fully derived DRAM timing
// model, the scheme set in plot order, and the network's canonical
// topology encoding. It is the content-address under which
// internal/rescache stores the result rows: equal fingerprints imply
// byte-identical results, and any change to an input changes the
// fingerprint.
//
// The DRAM geometry knobs enter through the derived dram.Config line,
// not the raw struct fields: a knob left at zero (the DDR4-like
// default) and the same knob set explicitly derive the same memory
// system, produce identical results, and deliberately share one
// fingerprint — the cache is content-addressed, not struct-addressed.
func ConfigFingerprint(npu NPUConfig, net *model.Network) string {
	h := sha256.New()
	fmt.Fprintf(h, "seda/v%s\n", PipelineVersion)
	// Floats are encoded exactly (hex mantissa), not via a rounded
	// decimal form, so configs differing below print precision still
	// fingerprint apart.
	fmt.Fprintf(h, "npu|%d:%s|%d|%d|%d|%s|%s|%d\n",
		len(npu.Name), npu.Name, npu.ArrayRows, npu.ArrayCols, npu.SRAMBytes,
		strconv.FormatFloat(npu.FreqHz, 'x', -1, 64),
		strconv.FormatFloat(npu.BandwidthB, 'x', -1, 64),
		npu.Channels)
	// The complete derived DRAM config, field for field. Every field
	// is an integer, so the encoding is exact by construction; the
	// hex-float exactness above already pins the inputs the derivation
	// rounds (FreqHz, BandwidthB).
	d := npu.DRAMConfig()
	fmt.Fprintf(h, "dram|%d|%d|%d|%d|%d|%d|%d|%d|%d|%d|%d|%d\n",
		d.Channels, d.BanksPerChan, d.RowBytes, d.BurstBytes,
		d.TBurst, d.TCL, d.TRCD, d.TRP, d.TRAS, d.TRefi, d.TRfc,
		d.WindowSize)
	fmt.Fprint(h, "schemes")
	for _, s := range Schemes() {
		fmt.Fprintf(h, "|%d:%d", s.Kind, s.Block)
	}
	fmt.Fprintln(h)
	h.Write(net.CanonicalBytes(nil)) //nolint:errcheck
	return hex.EncodeToString(h.Sum(nil))
}
