package seda

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"repro/internal/model"
)

// TestRunNetworkCtxBackgroundIdentical pins that the context plumbing
// is figure-neutral: the Ctx variant under context.Background produces
// exactly the rows of the plain call.
func TestRunNetworkCtxBackgroundIdentical(t *testing.T) {
	npu := EdgeNPU()
	net := model.ByName("let")
	want, err := RunNetworkOpts(npu, net, SequentialOptions())
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunNetworkOptsCtx(context.Background(), npu, net, SequentialOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("Ctx variant diverged from the plain call under Background")
	}
}

// TestRunNetworkPreCancelled: a dead context returns its error without
// evaluating.
func TestRunNetworkPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rows, err := RunNetworkOptsCtx(ctx, EdgeNPU(), model.ByName("let"), SequentialOptions())
	if !errors.Is(err, context.Canceled) || rows != nil {
		t.Fatalf("rows=%v err=%v, want nil/Canceled", rows, err)
	}
}

// TestRunSuiteCancelledMidFlight: cancelling while a multi-workload
// sweep is running unwinds the whole pipeline — protection walk, DRAM
// drains, worker pool — well before the sweep could finish.
func TestRunSuiteCancelledMidFlight(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second sweep")
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		// The full 13-workload edge suite takes seconds; the test
		// cancels it almost immediately.
		_, err := RunSuiteOptsCtx(ctx, EdgeNPU(), model.All(), DefaultSuiteOptions())
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want Canceled", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("cancelled sweep did not unwind")
	}
}

// TestRunSuiteDeadline: a context deadline surfaces as
// DeadlineExceeded from the suite entry point.
func TestRunSuiteDeadline(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second sweep")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err := RunSuiteOptsCtx(ctx, EdgeNPU(), model.All(), DefaultSuiteOptions())
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}
