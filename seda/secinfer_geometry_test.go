package seda

import (
	"testing"

	"repro/internal/secinfer"
)

// TestSecinferSearchGeometryMatchesEdgeNPU pins secinfer's reference
// search geometry to the authoritative edge NPU config: secinfer
// cannot import this package (layering), so it mirrors the Table II
// numbers as constants — if EdgeNPU is ever retuned, this fails
// instead of SearchedOptBlk silently simulating a stale platform.
func TestSecinferSearchGeometryMatchesEdgeNPU(t *testing.T) {
	npu := EdgeNPU()
	if npu.ArrayRows != secinfer.SearchArrayDim || npu.ArrayCols != secinfer.SearchArrayDim {
		t.Errorf("secinfer search array %dx%d != EdgeNPU %dx%d",
			secinfer.SearchArrayDim, secinfer.SearchArrayDim, npu.ArrayRows, npu.ArrayCols)
	}
	if npu.SRAMBytes != secinfer.SearchSRAMBytes {
		t.Errorf("secinfer search SRAM %d != EdgeNPU %d", secinfer.SearchSRAMBytes, npu.SRAMBytes)
	}
}
