package seda

import (
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/model"
)

// TestSuiteWorkerPoolSharedArenas runs a two-worker suite over two
// small workloads with no testing.Short() skip, so the `-race -short`
// CI job exercises concurrent RunNetworkOpts calls sharing the
// process-wide memprot overlay arena and dram queue arena — the paths
// an unsynchronized arena would corrupt. Results must still match the
// sequential reference.
func TestSuiteWorkerPoolSharedArenas(t *testing.T) {
	nets := []*model.Network{model.ByName("let"), model.ByName("ncf")}
	npu := EdgeNPU()
	par, err := RunSuiteOpts(npu, nets, SuiteOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := RunSuiteOpts(npu, nets, SequentialOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(par.Rows, seq.Rows) {
		t.Error("worker-pool rows differ from sequential reference")
	}
}

// TestSuiteDeterminismAcrossGOMAXPROCS re-checks the parallel-equals-
// sequential contract under real parallelism settings: the PR 1
// determinism tests only ever ran at the container's GOMAXPROCS, so a
// scheduling-order dependence that needs >1 P to surface would have
// slipped through. Each setting must reproduce the sequential
// single-goroutine reference byte for byte.
func TestSuiteDeterminismAcrossGOMAXPROCS(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second DRAM simulation")
	}
	nets := []*model.Network{model.ByName("let"), model.ByName("ncf")}
	npu := EdgeNPU()

	ref, err := RunSuiteOpts(npu, nets, SequentialOptions())
	if err != nil {
		t.Fatal(err)
	}

	orig := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(orig)
	for _, procs := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("GOMAXPROCS=%d", procs), func(t *testing.T) {
			runtime.GOMAXPROCS(procs)
			defer runtime.GOMAXPROCS(orig)
			got, err := RunSuiteOpts(npu, nets, DefaultSuiteOptions())
			if err != nil {
				t.Fatal(err)
			}
			for name, want := range ref.Rows {
				if !reflect.DeepEqual(got.Rows[name], want) {
					t.Errorf("%s: rows at GOMAXPROCS=%d differ from sequential reference",
						name, procs)
				}
			}
		})
	}
}
