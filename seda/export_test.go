package seda

import (
	"bytes"
	"encoding/csv"
	"strconv"
	"strings"
	"testing"

	"repro/internal/model"
)

func smallSuite(t *testing.T) *SuiteResult {
	t.Helper()
	s, err := RunSuiteOn(EdgeNPU(), []*model.Network{
		model.ByName("let"), model.ByName("ncf"),
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestTrafficCSVWellFormed(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second DRAM simulation")
	}
	s := smallSuite(t)
	var buf bytes.Buffer
	if err := s.WriteTrafficCSV(&buf); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(strings.NewReader(buf.String())).ReadAll()
	if err != nil {
		t.Fatalf("export not parseable CSV: %v", err)
	}
	// header + 2 workloads + avg
	if len(recs) != 4 {
		t.Fatalf("rows = %d, want 4", len(recs))
	}
	if recs[0][0] != "workload" || len(recs[0]) != 7 {
		t.Errorf("header wrong: %v", recs[0])
	}
	if recs[3][0] != "avg" {
		t.Errorf("last row %v, want avg", recs[3])
	}
	// Baseline column (last) must be exactly 1.0000 everywhere.
	for _, rec := range recs[1:] {
		v, err := strconv.ParseFloat(rec[len(rec)-1], 64)
		if err != nil || v != 1.0 {
			t.Errorf("baseline column = %q in row %v", rec[len(rec)-1], rec)
		}
	}
}

func TestPerfCSVValuesAtMostOne(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second DRAM simulation")
	}
	s := smallSuite(t)
	var buf bytes.Buffer
	if err := s.WritePerfCSV(&buf); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(strings.NewReader(buf.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs[1:] {
		for _, cell := range rec[1:] {
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				t.Fatalf("non-numeric cell %q", cell)
			}
			if v <= 0 || v > 1.0001 {
				t.Errorf("normalized perf %v outside (0,1]", v)
			}
		}
	}
}
