package seda

import (
	"testing"

	"repro/internal/model"
)

// BenchmarkRunSuite measures the full evaluation pipeline (13
// workloads x 6 schemes: scalesim schedule -> protection scheme ->
// DRAM timing) on both NPUs, sequential vs parallel. The sequential
// variant forces one goroutine end to end; the parallel variant is the
// default pipeline (GOMAXPROCS workload pool, concurrent schemes,
// concurrent channel drain). Before/after numbers for the perf
// trajectory live in BENCH_PIPELINE.json.
//
// Run with:
//
//	go test -run xxx -bench BenchmarkRunSuite -benchtime 1x ./seda
func BenchmarkRunSuite(b *testing.B) {
	for _, npu := range []NPUConfig{ServerNPU(), EdgeNPU()} {
		for _, mode := range []struct {
			name string
			opts SuiteOptions
		}{
			{"seq", SequentialOptions()},
			{"par", DefaultSuiteOptions()},
		} {
			b.Run(npu.Name+"/"+mode.name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := RunSuiteOpts(npu, model.All(), mode.opts); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
