package seda

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/memprot"
	"repro/internal/model"
)

func TestNPUConfigsMatchTableII(t *testing.T) {
	s := ServerNPU()
	if s.ArrayRows != 256 || s.ArrayCols != 256 {
		t.Errorf("server array %dx%d, want 256x256", s.ArrayRows, s.ArrayCols)
	}
	if s.SRAMBytes != 24*1024*1024 {
		t.Errorf("server SRAM %d, want 24MB", s.SRAMBytes)
	}
	if s.FreqHz != 1e9 || s.BandwidthB != 20e9 || s.Channels != 4 {
		t.Errorf("server mem config wrong: %+v", s)
	}
	e := EdgeNPU()
	if e.ArrayRows != 32 || e.ArrayCols != 32 {
		t.Errorf("edge array %dx%d, want 32x32", e.ArrayRows, e.ArrayCols)
	}
	if e.SRAMBytes != 480*1024 {
		t.Errorf("edge SRAM %d, want 480KB", e.SRAMBytes)
	}
	if e.FreqHz != 2.75e9 || e.BandwidthB != 10e9 || e.Channels != 4 {
		t.Errorf("edge mem config wrong: %+v", e)
	}
}

func TestNPUValidate(t *testing.T) {
	bad := ServerNPU()
	bad.Channels = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero channels validated")
	}
	bad = EdgeNPU()
	bad.SRAMBytes = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative SRAM validated")
	}
}

func TestDRAMTimingDerivation(t *testing.T) {
	// Server: 20 GB/s over 4 channels at 1 GHz -> 64B burst in
	// 64/(5e9) s = 12.8 accelerator cycles.
	cfg := ServerNPU().DRAMConfig()
	if cfg.TBurst != 12 {
		t.Errorf("server TBurst = %d, want 12 (12.8 truncated)", cfg.TBurst)
	}
	// Edge: 2.5 GB/s per channel at 2.75 GHz -> 70.4 cycles.
	cfg = EdgeNPU().DRAMConfig()
	if cfg.TBurst != 70 {
		t.Errorf("edge TBurst = %d, want 70", cfg.TBurst)
	}
	if cfg.TCL <= ServerNPU().DRAMConfig().TCL {
		t.Error("edge CAS latency (in faster clocks) should exceed server's")
	}
}

func TestRunNetworkRowShape(t *testing.T) {
	rows, err := RunNetwork(EdgeNPU(), model.ByName("let"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("got %d rows, want 6 schemes", len(rows))
	}
	base, err := SchemeRow(rows, memprot.SchemeBaseline)
	if err != nil {
		t.Fatal(err)
	}
	if base.NormTraffic != 1.0 || base.NormPerf != 1.0 {
		t.Errorf("baseline normalized to %.3f/%.3f, want 1/1", base.NormTraffic, base.NormPerf)
	}
	for _, r := range rows {
		if r.NormTraffic < 1.0 {
			t.Errorf("%s: traffic %.4f below baseline", r.Scheme.Name(), r.NormTraffic)
		}
		if r.NormPerf > 1.0+1e-9 {
			t.Errorf("%s: performance %.4f above baseline", r.Scheme.Name(), r.NormPerf)
		}
		if r.ExecCycles < r.ComputeCycles {
			t.Errorf("%s: exec %d below compute bound %d", r.Scheme.Name(), r.ExecCycles, r.ComputeCycles)
		}
	}
}

// TestPaperShapeBands checks the qualitative reproduction targets on a
// representative workload subset (full-suite numbers live in
// EXPERIMENTS.md and the benches): overhead ordering and rough
// magnitudes per Fig. 5/6.
func TestPaperShapeBands(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second DRAM simulation")
	}
	for _, npu := range []NPUConfig{ServerNPU(), EdgeNPU()} {
		for _, wl := range []string{"alex", "rest"} {
			rows, err := RunNetwork(npu, model.ByName(wl))
			if err != nil {
				t.Fatal(err)
			}
			get := func(s memprot.Scheme) RunResult {
				r, err := SchemeRow(rows, s)
				if err != nil {
					t.Fatal(err)
				}
				return r
			}
			sgx64 := get(memprot.SchemeSGX64)
			mgx64 := get(memprot.SchemeMGX64)
			sgx512 := get(memprot.SchemeSGX512)
			mgx512 := get(memprot.SchemeMGX512)
			sd := get(memprot.SchemeSeDA)

			// Fig. 5 magnitudes: SGX-64B ~+30%, MGX-64B ~+12.5%,
			// SeDA near zero.
			if o := sgx64.TrafficOverhead(); o < 0.20 || o > 0.45 {
				t.Errorf("%s/%s: SGX-64B traffic overhead %.3f outside [0.20,0.45]", npu.Name, wl, o)
			}
			if o := mgx64.TrafficOverhead(); o < 0.11 || o > 0.16 {
				t.Errorf("%s/%s: MGX-64B traffic overhead %.3f outside [0.11,0.16]", npu.Name, wl, o)
			}
			if o := sd.TrafficOverhead(); o > 0.01 {
				t.Errorf("%s/%s: SeDA traffic overhead %.4f above 1%%", npu.Name, wl, o)
			}

			// Ordering within each family and across granularities.
			if sgx64.NormTraffic < mgx64.NormTraffic ||
				sgx512.NormTraffic < mgx512.NormTraffic ||
				sgx64.NormTraffic < sgx512.NormTraffic ||
				mgx64.NormTraffic < mgx512.NormTraffic ||
				mgx512.NormTraffic < sd.NormTraffic {
				t.Errorf("%s/%s: traffic ordering violated", npu.Name, wl)
			}

			// Fig. 6: SGX-64B slows down 15-30%, SeDA < 1%.
			if o := sgx64.PerfOverhead(); o < 0.12 || o > 0.35 {
				t.Errorf("%s/%s: SGX-64B slowdown %.3f outside [0.12,0.35]", npu.Name, wl, o)
			}
			if o := sd.PerfOverhead(); o > 0.01 {
				t.Errorf("%s/%s: SeDA slowdown %.4f above 1%%", npu.Name, wl, o)
			}
			if sd.NormPerf < mgx512.NormPerf || mgx512.NormPerf < mgx64.NormPerf ||
				sgx512.NormPerf < sgx64.NormPerf {
				t.Errorf("%s/%s: performance ordering violated", npu.Name, wl)
			}
		}
	}
}

func TestSuiteTablesRender(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second DRAM simulation")
	}
	suite, err := RunSuiteOn(EdgeNPU(), []*model.Network{
		model.ByName("let"), model.ByName("ncf"), model.ByName("sent"),
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	suite.WriteTrafficTable(&buf)
	out := buf.String()
	for _, want := range []string{"let", "ncf", "sent", "avg", "SGX-64B", "SeDA", "Baseline"} {
		if !strings.Contains(out, want) {
			t.Errorf("traffic table missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	suite.WritePerfTable(&buf)
	if !strings.Contains(buf.String(), "Norm. Performance") {
		t.Error("perf table missing title")
	}

	if names := suite.Workloads(); len(names) != 3 || names[0] != "let" {
		t.Errorf("workload order wrong: %v", names)
	}
}

func TestSuiteAverages(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second DRAM simulation")
	}
	suite, err := RunSuiteOn(EdgeNPU(), []*model.Network{
		model.ByName("let"), model.ByName("dlrm"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if avg := suite.AvgNormTraffic(memprot.SchemeBaseline); avg != 1.0 {
		t.Errorf("baseline avg traffic %.4f != 1", avg)
	}
	if avg := suite.AvgNormPerf(memprot.SchemeBaseline); avg != 1.0 {
		t.Errorf("baseline avg perf %.4f != 1", avg)
	}
	if suite.AvgNormTraffic(memprot.SchemeSGX64) <= suite.AvgNormTraffic(memprot.SchemeSeDA) {
		t.Error("SGX-64B avg traffic not above SeDA's")
	}
	if suite.HeadlineImprovement() <= 0 {
		t.Error("headline improvement not positive")
	}
}

func TestRunNetworkRejectsBadConfig(t *testing.T) {
	bad := ServerNPU()
	bad.FreqHz = 0
	if _, err := RunNetwork(bad, model.ByName("let")); err == nil {
		t.Error("bad NPU config accepted")
	}
}

func TestSchemeRowMissing(t *testing.T) {
	if _, err := SchemeRow(nil, memprot.SchemeSeDA); err == nil {
		t.Error("missing scheme did not error")
	}
}
