package seda

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/model"
)

func TestRunResultJSONRoundTrip(t *testing.T) {
	rows, err := RunNetworkOpts(EdgeNPU(), model.ByName("let"), DefaultSuiteOptions())
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(rows)
	if err != nil {
		t.Fatal(err)
	}
	var back []RunResult
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	assertRowsEqual(t, back, rows)

	// Re-marshaling the round-tripped rows is byte-identical — the
	// property the result cache's byte-level storage relies on.
	blob2, err := json.Marshal(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, blob2) {
		t.Fatal("JSON round-trip not byte-stable")
	}
}

func TestRunResultJSONFieldOrder(t *testing.T) {
	blob, err := json.Marshal(RunResult{NPU: "edge", Network: "let"})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"npu", "network", "scheme", "data_bytes", "meta_bytes",
		"norm_traffic", "exec_cycles", "norm_perf", "compute_cycles",
	}
	prev := -1
	for _, field := range want {
		i := bytes.Index(blob, []byte(`"`+field+`"`))
		if i < 0 {
			t.Fatalf("field %q missing in %s", field, blob)
		}
		if i < prev {
			t.Fatalf("field %q out of order in %s", field, blob)
		}
		prev = i
	}
}

func TestRunResultUnmarshalUnknownScheme(t *testing.T) {
	var r RunResult
	err := json.Unmarshal([]byte(`{"scheme":"SGX-4096B"}`), &r)
	if err == nil || !strings.Contains(err.Error(), "unknown scheme") {
		t.Fatalf("err = %v, want unknown scheme", err)
	}
}

func TestSchemeByName(t *testing.T) {
	for _, q := range []string{"SeDA", "seda", "SGX-64B", "sgx-64b", "Baseline"} {
		if _, err := SchemeByName(q); err != nil {
			t.Errorf("SchemeByName(%q): %v", q, err)
		}
	}
	if _, err := SchemeByName("nope"); err == nil {
		t.Error("SchemeByName should fail for unknown names")
	}
}

func TestWriteJSONDeterministicAndWellFormed(t *testing.T) {
	suite, err := RunSuiteOn(EdgeNPU(), []*model.Network{
		model.ByName("let"), model.ByName("ncf"),
	})
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := suite.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := suite.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("WriteJSON not deterministic")
	}

	var doc struct {
		NPU             string   `json:"npu"`
		PipelineVersion string   `json:"pipeline_version"`
		Schemes         []string `json:"schemes"`
		Workloads       []string `json:"workloads"`
		Rows            []struct {
			Workload string      `json:"workload"`
			Results  []RunResult `json:"results"`
		} `json:"rows"`
		AvgNormTraffic []float64 `json:"avg_norm_traffic"`
		AvgNormPerf    []float64 `json:"avg_norm_perf"`
	}
	if err := json.Unmarshal(a.Bytes(), &doc); err != nil {
		t.Fatalf("WriteJSON output not parseable: %v", err)
	}
	if doc.NPU != "edge" || doc.PipelineVersion != PipelineVersion {
		t.Fatalf("header wrong: %+v", doc)
	}
	if len(doc.Workloads) != 2 || doc.Workloads[0] != "let" {
		t.Fatalf("workloads = %v, want figure order [let ncf]", doc.Workloads)
	}
	if len(doc.Rows) != 2 || len(doc.Rows[0].Results) != len(Schemes()) {
		t.Fatalf("rows malformed: %d rows", len(doc.Rows))
	}
	if len(doc.AvgNormTraffic) != len(Schemes()) || len(doc.AvgNormPerf) != len(Schemes()) {
		t.Fatal("avg arrays not aligned with schemes")
	}
	// Baseline (last scheme) is 1.0 by construction.
	if doc.AvgNormTraffic[len(doc.AvgNormTraffic)-1] != 1.0 {
		t.Fatalf("baseline avg traffic = %v, want 1.0", doc.AvgNormTraffic)
	}
}

func TestWriteSuitesJSONArray(t *testing.T) {
	suite, err := RunSuiteOn(EdgeNPU(), []*model.Network{model.ByName("let")})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSuitesJSON(&buf, suite, suite); err != nil {
		t.Fatal(err)
	}
	var arr []json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &arr); err != nil {
		t.Fatalf("not a JSON array: %v", err)
	}
	if len(arr) != 2 {
		t.Fatalf("len = %d, want 2", len(arr))
	}
}
