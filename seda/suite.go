package seda

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"text/tabwriter"

	"repro/internal/memprot"
	"repro/internal/model"
	"repro/internal/obs"
)

// SuiteResult holds a full Fig. 5/6 sweep for one NPU: every workload
// of the paper's benchmark set against every scheme.
type SuiteResult struct {
	NPU  NPUConfig
	Rows map[string][]RunResult // workload short name -> per-scheme rows
}

// SuiteOptions tunes how a sweep executes. The pipeline is
// deterministic under every setting: parallel and sequential runs
// produce byte-identical results (see TestSuiteDeterminism).
type SuiteOptions struct {
	// Workers bounds how many workloads evaluate concurrently.
	// 0 (the default) means GOMAXPROCS.
	Workers int

	// SequentialSchemes evaluates the protection schemes of each
	// workload one after another instead of on parallel goroutines.
	SequentialSchemes bool

	// SequentialDRAM drains DRAM channels on a single goroutine
	// instead of one goroutine per channel.
	SequentialDRAM bool
}

// DefaultSuiteOptions parallelizes at every level: a GOMAXPROCS-bounded
// workload pool, concurrent scheme evaluation, and concurrent DRAM
// channel draining.
func DefaultSuiteOptions() SuiteOptions { return SuiteOptions{} }

// SequentialOptions forces the whole pipeline onto one goroutine —
// the determinism reference and profiling baseline.
func SequentialOptions() SuiteOptions {
	return SuiteOptions{Workers: 1, SequentialSchemes: true, SequentialDRAM: true}
}

func (o SuiteOptions) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// RunSuite evaluates all 13 workloads on one NPU.
func RunSuite(npu NPUConfig) (*SuiteResult, error) {
	return RunSuiteOpts(npu, model.All(), DefaultSuiteOptions())
}

// RunSuiteOn evaluates the given workloads on one NPU.
func RunSuiteOn(npu NPUConfig, nets []*model.Network) (*SuiteResult, error) {
	return RunSuiteOpts(npu, nets, DefaultSuiteOptions())
}

// RunSuiteOpts evaluates the given workloads on one NPU with explicit
// execution options. Workloads are independent given their own
// simulator state, so they run through a bounded worker pool; results
// are collected per slot and assembled in input order, and the first
// error (in input order) wins, so output is independent of scheduling.
func RunSuiteOpts(npu NPUConfig, nets []*model.Network, opts SuiteOptions) (*SuiteResult, error) {
	return RunSuiteOptsCtx(context.Background(), npu, nets, opts)
}

// RunSuiteOptsCtx is RunSuiteOpts under a caller context. Cancellation
// propagates into every in-flight workload evaluation (see
// RunNetworkOptsCtx) and stops the pool dispatching new ones; a
// cancelled sweep returns ctx.Err() and no partial result.
func RunSuiteOptsCtx(ctx context.Context, npu NPUConfig, nets []*model.Network, opts SuiteOptions) (*SuiteResult, error) {
	return runSuiteWith(ctx, npu, nets, opts, func(ctx context.Context, n *model.Network) ([]RunResult, error) {
		return RunNetworkOptsCtx(ctx, npu, n, opts)
	})
}

// runSuiteWith is the suite scaffolding shared by RunSuiteOpts and
// RunSuiteCached: a bounded worker pool over the workloads, per-slot
// result collection, and input-order assembly and error reporting.
// The context gates dispatch (no new workload starts once it is
// cancelled) and is passed to run for intra-workload cancellation;
// when it expires, the first error reported is ctx.Err() itself, so
// callers see the cancellation rather than an arbitrary workload's
// wrapped copy of it.
func runSuiteWith(ctx context.Context, npu NPUConfig, nets []*model.Network, opts SuiteOptions, run func(context.Context, *model.Network) ([]RunResult, error)) (*SuiteResult, error) {
	ctx, suiteSpan := obs.Start(ctx, obs.StageSuite)
	suiteSpan.SetDetail(npu.Name)
	defer suiteSpan.End()
	inner := run
	run = func(ctx context.Context, n *model.Network) ([]RunResult, error) {
		ctx, sp := obs.Start(ctx, obs.StageWorkload)
		sp.SetDetail(n.Name)
		defer sp.End()
		return inner(ctx, n)
	}

	workers := opts.workers()
	if workers > len(nets) {
		workers = len(nets)
	}

	rows := make([][]RunResult, len(nets))
	errs := make([]error, len(nets))
	done := ctx.Done()
	cancelled := func() bool {
		if done == nil {
			return false
		}
		select {
		case <-done:
			return true
		default:
			return false
		}
	}
	if workers <= 1 {
		for i, n := range nets {
			if cancelled() {
				break
			}
			rows[i], errs[i] = run(ctx, n)
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					rows[i], errs[i] = run(ctx, nets[i])
				}
			}()
		}
	dispatch:
		for i := range nets {
			select {
			case idx <- i:
			case <-done:
				break dispatch
			}
		}
		close(idx)
		wg.Wait()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	res := &SuiteResult{NPU: npu, Rows: make(map[string][]RunResult, len(nets))}
	for i, n := range nets {
		if errs[i] != nil {
			return nil, fmt.Errorf("seda: %s on %s: %w", n.Name, npu.Name, errs[i])
		}
		res.Rows[n.Name] = rows[i]
	}
	return res, nil
}

// Workloads returns the workload names present, in the paper's order
// where possible.
func (s *SuiteResult) Workloads() []string {
	order := map[string]int{}
	for i, n := range model.Names() {
		order[n] = i
	}
	names := make([]string, 0, len(s.Rows))
	for n := range s.Rows {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		oi, iok := order[names[i]]
		oj, jok := order[names[j]]
		switch {
		case iok && jok:
			return oi < oj
		case iok:
			return true
		case jok:
			return false
		default:
			return names[i] < names[j]
		}
	})
	return names
}

// AvgNormTraffic averages a scheme's normalized traffic across
// workloads (the "avg" bar of Fig. 5).
func (s *SuiteResult) AvgNormTraffic(scheme memprot.Scheme) float64 {
	return s.avg(scheme, func(r RunResult) float64 { return r.NormTraffic })
}

// AvgNormPerf averages a scheme's normalized performance across
// workloads (the "avg" bar of Fig. 6).
func (s *SuiteResult) AvgNormPerf(scheme memprot.Scheme) float64 {
	return s.avg(scheme, func(r RunResult) float64 { return r.NormPerf })
}

func (s *SuiteResult) avg(scheme memprot.Scheme, f func(RunResult) float64) float64 {
	// Sum in Workloads() order, not map order: float addition is not
	// associative, so a map-order walk made the last few bits of the
	// averages (and every serialized byte downstream) vary run to run.
	var sum float64
	var n int
	for _, name := range s.Workloads() {
		for _, r := range s.Rows[name] {
			if r.Scheme == scheme {
				sum += f(r)
				n++
			}
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// WriteTrafficTable prints the Fig. 5 data (normalized memory traffic
// per workload and scheme, plus the average row).
func (s *SuiteResult) WriteTrafficTable(w io.Writer) {
	s.writeTable(w, "Norm. Mem. Traffic", func(r RunResult) float64 { return r.NormTraffic })
}

// WritePerfTable prints the Fig. 6 data (normalized performance per
// workload and scheme, plus the average row).
func (s *SuiteResult) WritePerfTable(w io.Writer) {
	s.writeTable(w, "Norm. Performance", func(r RunResult) float64 { return r.NormPerf })
}

func (s *SuiteResult) writeTable(w io.Writer, title string, f func(RunResult) float64) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "%s (%s NPU)\n", title, s.NPU.Name)
	fmt.Fprint(tw, "workload")
	schemes := Schemes()
	for _, sc := range schemes {
		fmt.Fprintf(tw, "\t%s", sc.Name())
	}
	fmt.Fprintln(tw)
	for _, name := range s.Workloads() {
		fmt.Fprint(tw, name)
		for _, sc := range schemes {
			r, err := SchemeRow(s.Rows[name], sc)
			if err != nil {
				fmt.Fprint(tw, "\t-")
				continue
			}
			fmt.Fprintf(tw, "\t%.3f", f(r))
		}
		fmt.Fprintln(tw)
	}
	fmt.Fprint(tw, "avg")
	for _, sc := range schemes {
		fmt.Fprintf(tw, "\t%.3f", s.avg(sc, f))
	}
	fmt.Fprintln(tw)
	tw.Flush() //nolint:errcheck
}

// HeadlineImprovement returns how much SeDA reduces average
// performance overhead relative to SGX-64B (percentage points) — the
// abstract's ">12%" claim compares the protection overhead SeDA
// removes.
func (s *SuiteResult) HeadlineImprovement() float64 {
	sgx := 1 - s.AvgNormPerf(memprot.SchemeSGX64)
	seda := 1 - s.AvgNormPerf(memprot.SchemeSeDA)
	return (sgx - seda) * 100
}
