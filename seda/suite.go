package seda

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"

	"repro/internal/memprot"
	"repro/internal/model"
)

// SuiteResult holds a full Fig. 5/6 sweep for one NPU: every workload
// of the paper's benchmark set against every scheme.
type SuiteResult struct {
	NPU  NPUConfig
	Rows map[string][]RunResult // workload short name -> per-scheme rows
}

// RunSuite evaluates all 13 workloads on one NPU.
func RunSuite(npu NPUConfig) (*SuiteResult, error) {
	return RunSuiteOn(npu, model.All())
}

// RunSuiteOn evaluates the given workloads on one NPU.
func RunSuiteOn(npu NPUConfig, nets []*model.Network) (*SuiteResult, error) {
	res := &SuiteResult{NPU: npu, Rows: make(map[string][]RunResult)}
	for _, n := range nets {
		rows, err := RunNetwork(npu, n)
		if err != nil {
			return nil, fmt.Errorf("seda: %s on %s: %w", n.Name, npu.Name, err)
		}
		res.Rows[n.Name] = rows
	}
	return res, nil
}

// Workloads returns the workload names present, in the paper's order
// where possible.
func (s *SuiteResult) Workloads() []string {
	order := map[string]int{}
	for i, n := range model.Names() {
		order[n] = i
	}
	names := make([]string, 0, len(s.Rows))
	for n := range s.Rows {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		oi, iok := order[names[i]]
		oj, jok := order[names[j]]
		switch {
		case iok && jok:
			return oi < oj
		case iok:
			return true
		case jok:
			return false
		default:
			return names[i] < names[j]
		}
	})
	return names
}

// AvgNormTraffic averages a scheme's normalized traffic across
// workloads (the "avg" bar of Fig. 5).
func (s *SuiteResult) AvgNormTraffic(scheme memprot.Scheme) float64 {
	return s.avg(scheme, func(r RunResult) float64 { return r.NormTraffic })
}

// AvgNormPerf averages a scheme's normalized performance across
// workloads (the "avg" bar of Fig. 6).
func (s *SuiteResult) AvgNormPerf(scheme memprot.Scheme) float64 {
	return s.avg(scheme, func(r RunResult) float64 { return r.NormPerf })
}

func (s *SuiteResult) avg(scheme memprot.Scheme, f func(RunResult) float64) float64 {
	var sum float64
	var n int
	for _, rows := range s.Rows {
		for _, r := range rows {
			if r.Scheme == scheme {
				sum += f(r)
				n++
			}
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// WriteTrafficTable prints the Fig. 5 data (normalized memory traffic
// per workload and scheme, plus the average row).
func (s *SuiteResult) WriteTrafficTable(w io.Writer) {
	s.writeTable(w, "Norm. Mem. Traffic", func(r RunResult) float64 { return r.NormTraffic })
}

// WritePerfTable prints the Fig. 6 data (normalized performance per
// workload and scheme, plus the average row).
func (s *SuiteResult) WritePerfTable(w io.Writer) {
	s.writeTable(w, "Norm. Performance", func(r RunResult) float64 { return r.NormPerf })
}

func (s *SuiteResult) writeTable(w io.Writer, title string, f func(RunResult) float64) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "%s (%s NPU)\n", title, s.NPU.Name)
	fmt.Fprint(tw, "workload")
	schemes := Schemes()
	for _, sc := range schemes {
		fmt.Fprintf(tw, "\t%s", sc.Name())
	}
	fmt.Fprintln(tw)
	for _, name := range s.Workloads() {
		fmt.Fprint(tw, name)
		for _, sc := range schemes {
			r, err := SchemeRow(s.Rows[name], sc)
			if err != nil {
				fmt.Fprint(tw, "\t-")
				continue
			}
			fmt.Fprintf(tw, "\t%.3f", f(r))
		}
		fmt.Fprintln(tw)
	}
	fmt.Fprint(tw, "avg")
	for _, sc := range schemes {
		fmt.Fprintf(tw, "\t%.3f", s.avg(sc, f))
	}
	fmt.Fprintln(tw)
	tw.Flush() //nolint:errcheck
}

// HeadlineImprovement returns how much SeDA reduces average
// performance overhead relative to SGX-64B (percentage points) — the
// abstract's ">12%" claim compares the protection overhead SeDA
// removes.
func (s *SuiteResult) HeadlineImprovement() float64 {
	sgx := 1 - s.AvgNormPerf(memprot.SchemeSGX64)
	seda := 1 - s.AvgNormPerf(memprot.SchemeSeDA)
	return (sgx - seda) * 100
}
