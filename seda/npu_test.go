package seda

import (
	"math"
	"strconv"
	"strings"
	"testing"

	"repro/internal/dram"
	"repro/internal/model"
)

func TestNPUByName(t *testing.T) {
	for _, q := range []string{"server", "SERVER", "Edge", "edge"} {
		npu, err := NPUByName(q)
		if err != nil {
			t.Fatalf("NPUByName(%q): %v", q, err)
		}
		if !strings.EqualFold(npu.Name, q) {
			t.Fatalf("NPUByName(%q) = %q", q, npu.Name)
		}
	}
	_, err := NPUByName("tpu-v9")
	if err == nil {
		t.Fatal("NPUByName should fail for unknown names")
	}
	for _, name := range NPUNames() {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("error %q does not list preset %q", err, name)
		}
	}
}

func TestNPUPresetsValidate(t *testing.T) {
	for _, p := range NPUPresets() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

// TestDerivedDRAMConfigGolden pins the exact dram.Config both Table II
// presets derive. The parametrization refactor (geometry knobs on
// NPUConfig, DDR4-like defaults for zero values) must not move a
// single field — these literals were captured from the pre-refactor
// dramConfig and any drift here moves Fig. 5/6.
func TestDerivedDRAMConfigGolden(t *testing.T) {
	want := map[string]dram.Config{
		"server": {
			Channels: 4, BanksPerChan: 16, RowBytes: 2048, BurstBytes: 64,
			TBurst: 12, TCL: 14, TRCD: 14, TRP: 14, TRAS: 32,
			TRefi: 7800, TRfc: 350, WindowSize: 32,
		},
		"edge": {
			Channels: 4, BanksPerChan: 16, RowBytes: 2048, BurstBytes: 64,
			TBurst: 70, TCL: 38, TRCD: 38, TRP: 38, TRAS: 88,
			TRefi: 21450, TRfc: 962, WindowSize: 32,
		},
	}
	for _, p := range NPUPresets() {
		got := p.DRAMConfig()
		if got != want[p.Name] {
			t.Errorf("%s derived config moved:\n got %+v\nwant %+v", p.Name, got, want[p.Name])
		}
		// Zeroed knobs (a pre-refactor config literal) must derive the
		// identical memory system via the DDR4-like defaults.
		legacy := p
		legacy.BanksPerChan, legacy.RowBytes, legacy.BurstBytes, legacy.WindowSize = 0, 0, 0, 0
		if legacy.DRAMConfig() != got {
			t.Errorf("%s: zero knobs derive %+v, explicit defaults derive %+v", p.Name, legacy.DRAMConfig(), got)
		}
	}
}

func TestValidateRejectsBadDRAMGeometry(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*NPUConfig)
		errWant string
	}{
		{"row below burst", func(c *NPUConfig) { c.RowBytes = 32 }, "RowBytes 32 < NPUConfig.BurstBytes 64"},
		{"row below default burst via knob", func(c *NPUConfig) { c.BurstBytes = 4096 }, "RowBytes 2048 < NPUConfig.BurstBytes 4096"},
		{"row not burst multiple", func(c *NPUConfig) { c.RowBytes = 96 }, "not a multiple"},
		{"negative banks", func(c *NPUConfig) { c.BanksPerChan = -1 }, "negative DRAM geometry"},
		{"negative window", func(c *NPUConfig) { c.WindowSize = -8 }, "negative DRAM geometry"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			npu := EdgeNPU()
			tc.mutate(&npu)
			err := npu.Validate()
			if err == nil {
				t.Fatalf("Validate accepted %+v", npu)
			}
			if !strings.Contains(err.Error(), tc.errWant) {
				t.Fatalf("err = %q, want it to contain %q", err, tc.errWant)
			}
			// The invalid geometry must be unreachable from the pipeline
			// entry points, not just flagged by a standalone Validate.
			if _, rerr := RunNetwork(npu, model.ByName("let")); rerr == nil {
				t.Fatal("RunNetwork accepted an invalid geometry")
			}
		})
	}
}

// npuKnobs lists one mutator per NPUConfig field that feeds the
// evaluation, paired with the field name. TestFingerprintKnobSensitivity
// walks it so a future field added without a fingerprint line fails
// loudly here (after extending this table).
var npuKnobs = []struct {
	field  string
	mutate func(*NPUConfig)
}{
	{"Name", func(c *NPUConfig) { c.Name = c.Name + "x" }},
	{"ArrayRows", func(c *NPUConfig) { c.ArrayRows *= 2 }},
	{"ArrayCols", func(c *NPUConfig) { c.ArrayCols *= 2 }},
	{"SRAMBytes", func(c *NPUConfig) { c.SRAMBytes *= 2 }},
	{"FreqHz", func(c *NPUConfig) { c.FreqHz = math.Nextafter(c.FreqHz, 2*c.FreqHz) }},
	{"BandwidthB", func(c *NPUConfig) { c.BandwidthB = math.Nextafter(c.BandwidthB, 2*c.BandwidthB) }},
	{"Channels", func(c *NPUConfig) { c.Channels *= 2 }},
	{"BanksPerChan", func(c *NPUConfig) { c.BanksPerChan = 2 * c.DRAMConfig().BanksPerChan }},
	{"RowBytes", func(c *NPUConfig) { c.RowBytes = 2 * c.DRAMConfig().RowBytes }},
	{"BurstBytes", func(c *NPUConfig) { c.BurstBytes = 2 * c.DRAMConfig().BurstBytes }},
	{"WindowSize", func(c *NPUConfig) { c.WindowSize = 2 * c.DRAMConfig().WindowSize }},
}

// TestFingerprintKnobSensitivity flips every NPUConfig knob — the
// Table II fields and each new DRAM-geometry knob — and requires the
// fingerprint to move. FreqHz/BandwidthB flip by one ULP: the
// hex-float encoding must distinguish values no decimal print would.
func TestFingerprintKnobSensitivity(t *testing.T) {
	net := model.ByName("let")
	for _, preset := range NPUPresets() {
		base := ConfigFingerprint(preset, net)
		for _, knob := range npuKnobs {
			npu := preset
			knob.mutate(&npu)
			if got := ConfigFingerprint(npu, net); got == base {
				t.Errorf("%s: flipping %s did not change the fingerprint", preset.Name, knob.field)
			}
		}
	}
}

// TestFingerprintDefaultKnobsAlias pins the content-addressing rule:
// a DRAM knob left at zero and the same knob set to its DDR4-like
// default derive the same memory system, so they must share one
// fingerprint (and thus one cache entry).
func TestFingerprintDefaultKnobsAlias(t *testing.T) {
	net := model.ByName("let")
	for _, preset := range NPUPresets() {
		legacy := preset
		legacy.BanksPerChan, legacy.RowBytes, legacy.BurstBytes, legacy.WindowSize = 0, 0, 0, 0
		if ConfigFingerprint(legacy, net) != ConfigFingerprint(preset, net) {
			t.Errorf("%s: zero knobs and explicit defaults fingerprint apart", preset.Name)
		}
	}
}

// TestHexFloatRoundTrip pins the encoding property the fingerprint's
// exactness claim rests on: FormatFloat(x, 'x', -1, 64) parses back to
// the identical float64 for awkward values (subnormals, ULP
// neighbours, non-terminating decimals).
func TestHexFloatRoundTrip(t *testing.T) {
	values := []float64{
		1e9, 2.75e9, 20e9,
		math.Nextafter(1e9, 2e9),
		math.Nextafter(2.75e9, 0),
		1.0 / 3.0,
		math.SmallestNonzeroFloat64,
		math.MaxFloat64,
	}
	for _, v := range values {
		s := strconv.FormatFloat(v, 'x', -1, 64)
		back, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("ParseFloat(%q): %v", s, err)
		}
		if back != v {
			t.Errorf("hex round-trip moved %v (% x) to %v", v, v, back)
		}
	}
}
