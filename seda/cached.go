package seda

import (
	"context"
	"encoding/json"
	"fmt"

	"repro/internal/model"
	"repro/internal/rescache"
)

// Cached evaluation wrappers. The cache is consulted per (NPU,
// network) — one rescache entry per ConfigFingerprint — so a partial
// sweep that already evaluated some workloads reuses exactly those
// rows, and concurrent identical requests (e.g. two seda-serve clients
// asking for the same figure) coalesce onto one pipeline evaluation
// via the cache's singleflight layer.
//
// Entries store the rows' canonical JSON. JSON round-trips every field
// exactly (floats via shortest-form encoding), so rows served from the
// cache are indistinguishable from freshly computed ones and re-serialize
// to byte-identical output — see TestCachedRowsByteIdentical.

// RunNetworkCached evaluates every scheme on one network, serving from
// (and filling) c. hit reports whether the result was served without a
// fresh pipeline evaluation by this call: from memory, from the disk
// layer, or by coalescing onto a concurrent identical evaluation. A
// nil cache degrades to RunNetworkOpts.
func RunNetworkCached(c *rescache.Cache, npu NPUConfig, net *model.Network, opts SuiteOptions) (rows []RunResult, hit bool, err error) {
	return RunNetworkCachedCtx(context.Background(), c, npu, net, opts)
}

// RunNetworkCachedCtx is RunNetworkCached under a caller context. The
// context governs this caller's wait on the cache, not the evaluation
// itself: the pipeline runs under the cache's detached compute context
// (which the evaluation observes via RunNetworkOptsCtx), so a caller
// that cancels detaches immediately while an evaluation other callers
// still await keeps running — see rescache.GetOrComputeCtx.
func RunNetworkCachedCtx(ctx context.Context, c *rescache.Cache, npu NPUConfig, net *model.Network, opts SuiteOptions) (rows []RunResult, hit bool, err error) {
	if c == nil {
		rows, err = RunNetworkOptsCtx(ctx, npu, net, opts)
		return rows, false, err
	}
	if err := npu.Validate(); err != nil {
		return nil, false, err
	}
	key := ConfigFingerprint(npu, net)
	compute := func(cctx context.Context) ([]byte, error) {
		fresh, err := RunNetworkOptsCtx(cctx, npu, net, opts)
		if err != nil {
			return nil, err
		}
		return json.Marshal(fresh)
	}
	// A blob that fails to decode into the expected shape can only come
	// from a damaged disk entry (freshly computed blobs are our own
	// marshaling of a full scheme set): evict it and recompute once, so
	// the cache self-heals instead of pinning the corruption in memory.
	for attempt := 0; ; attempt++ {
		blob, hit, err := c.GetOrComputeCtx(ctx, key, compute)
		if err != nil {
			return nil, false, err
		}
		var decoded []RunResult
		derr := json.Unmarshal(blob, &decoded)
		if derr == nil && len(decoded) != len(Schemes()) {
			derr = fmt.Errorf("%d rows, want %d", len(decoded), len(Schemes()))
		}
		if derr != nil {
			if attempt == 0 {
				c.Evict(key)
				continue
			}
			return nil, false, fmt.Errorf("seda: corrupt cache entry %s: %w", key, derr)
		}
		return decoded, hit, nil
	}
}

// RunSuiteCached is RunSuiteOpts with the per-network cache in front:
// each (NPU, network) pair is looked up independently, so a sweep only
// evaluates the workloads the cache has not seen. Uncached workloads
// run through the same bounded worker pool as RunSuiteOpts, and output
// is assembled in input order regardless of scheduling.
func RunSuiteCached(c *rescache.Cache, npu NPUConfig, nets []*model.Network, opts SuiteOptions) (*SuiteResult, error) {
	return RunSuiteCachedCtx(context.Background(), c, npu, nets, opts)
}

// RunSuiteCachedCtx is RunSuiteCached under a caller context, with the
// per-workload cancellation semantics of RunNetworkCachedCtx.
func RunSuiteCachedCtx(ctx context.Context, c *rescache.Cache, npu NPUConfig, nets []*model.Network, opts SuiteOptions) (*SuiteResult, error) {
	if c == nil {
		return RunSuiteOptsCtx(ctx, npu, nets, opts)
	}
	return runSuiteWith(ctx, npu, nets, opts, func(ctx context.Context, n *model.Network) ([]RunResult, error) {
		rows, _, err := RunNetworkCachedCtx(ctx, c, npu, n, opts)
		return rows, err
	})
}
