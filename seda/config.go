// Package seda is the public API of the SeDA reproduction: it wires
// the systolic-array simulator, the memory-protection schemes and the
// DRAM timing model into the evaluation pipeline of the paper's §IV
// and exposes the two NPU configurations of Table II — plus, beyond
// the paper, a fully parametric platform space: every compute and
// DRAM-geometry knob of NPUConfig can be set explicitly, validated,
// evaluated and cached exactly like the named presets.
//
// Typical use:
//
//	npu, err := seda.NPUByName("server")
//	rows, err := seda.RunNetwork(npu, model.ByName("rest"))
//	// rows contains normalized traffic and performance per scheme.
package seda

import (
	"fmt"
	"strings"

	"repro/internal/dram"
	"repro/internal/memprot"
	"repro/internal/scalesim"
)

// NPUConfig describes an accelerator platform. The first block is
// Table II's compute/memory headline; the second block opens the DRAM
// geometry the paper kept fixed (a DDR4-like part) to design-space
// exploration. Every DRAM-geometry knob treats zero as "the DDR4-like
// default", so configurations written before the knobs existed — and
// the two Table II presets — keep byte-identical derived timing.
type NPUConfig struct {
	Name       string
	ArrayRows  int
	ArrayCols  int
	SRAMBytes  int
	FreqHz     float64
	BandwidthB float64 // aggregate DRAM bandwidth in bytes/s
	Channels   int

	// DRAM geometry knobs (0 = DDR4-like default, see dram.DDR4Like).
	// They feed the derived dram.Config returned by DRAMConfig, which
	// is what the cache fingerprint covers — so two NPUConfigs whose
	// knobs derive the same memory system share cached results.
	BanksPerChan int // banks per channel (default 16)
	RowBytes     int // row-buffer size per bank (default 2048)
	BurstBytes   int // bytes per burst (default 64; BL8 x 64-bit bus)
	WindowSize   int // FR-FCFS reorder window per channel (default 32)
}

// ServerNPU returns the Google TPU v1-like configuration:
// 256×256 PEs, 24 MB SRAM, 1 GHz, 20 GB/s over four 64-bit channels.
// The DRAM geometry knobs carry the DDR4-like defaults explicitly.
func ServerNPU() NPUConfig {
	return NPUConfig{
		Name:         "server",
		ArrayRows:    256,
		ArrayCols:    256,
		SRAMBytes:    24 * 1024 * 1024,
		FreqHz:       1e9,
		BandwidthB:   20e9,
		Channels:     4,
		BanksPerChan: 16,
		RowBytes:     2048,
		BurstBytes:   64,
		WindowSize:   32,
	}
}

// EdgeNPU returns the Samsung Exynos 990-like configuration:
// 32×32 PEs, 480 KB SRAM, 2.75 GHz, 10 GB/s over four channels.
func EdgeNPU() NPUConfig {
	return NPUConfig{
		Name:         "edge",
		ArrayRows:    32,
		ArrayCols:    32,
		SRAMBytes:    480 * 1024,
		FreqHz:       2.75e9,
		BandwidthB:   10e9,
		Channels:     4,
		BanksPerChan: 16,
		RowBytes:     2048,
		BurstBytes:   64,
		WindowSize:   32,
	}
}

// NPUPresets returns the named platform presets (Table II) in display
// order.
func NPUPresets() []NPUConfig { return []NPUConfig{ServerNPU(), EdgeNPU()} }

// NPUNames returns the preset names in display order.
func NPUNames() []string {
	presets := NPUPresets()
	names := make([]string, len(presets))
	for i, p := range presets {
		names[i] = p.Name
	}
	return names
}

// NPUByName resolves a platform preset case-insensitively ("Server"
// and "server" are the same platform). A failed lookup's error lists
// the valid names, mirroring model.ByName's convention.
func NPUByName(name string) (NPUConfig, error) {
	for _, p := range NPUPresets() {
		if strings.EqualFold(p.Name, name) {
			return p, nil
		}
	}
	return NPUConfig{}, fmt.Errorf("seda: unknown npu %q (known: %s)",
		name, strings.Join(NPUNames(), ", "))
}

// Validate checks the configuration, including the DRAM geometry the
// span-queue scheduler will be handed: a geometry the drain cannot
// address (a row smaller than a burst, a row that is not a whole
// number of bursts) is rejected here, with the offending NPUConfig
// field named, instead of surfacing as a bare dram.Config error deep
// inside an evaluation.
func (c NPUConfig) Validate() error {
	if c.ArrayRows <= 0 || c.ArrayCols <= 0 || c.SRAMBytes <= 0 {
		return fmt.Errorf("seda: non-positive compute config %+v", c)
	}
	if c.FreqHz <= 0 || c.BandwidthB <= 0 || c.Channels <= 0 {
		return fmt.Errorf("seda: non-positive memory config %+v", c)
	}
	if c.BanksPerChan < 0 || c.RowBytes < 0 || c.BurstBytes < 0 || c.WindowSize < 0 {
		return fmt.Errorf("seda: negative DRAM geometry in %+v (use 0 for the DDR4-like default)", c)
	}
	d := c.DRAMConfig()
	if d.RowBytes < d.BurstBytes {
		return fmt.Errorf("seda: NPUConfig.RowBytes %d < NPUConfig.BurstBytes %d: a DRAM row must hold at least one burst", d.RowBytes, d.BurstBytes)
	}
	if d.RowBytes%d.BurstBytes != 0 {
		return fmt.Errorf("seda: NPUConfig.RowBytes %d is not a multiple of NPUConfig.BurstBytes %d: the span-queue drain addresses rows in whole bursts", d.RowBytes, d.BurstBytes)
	}
	// Backstop: any remaining derived-model constraint surfaces here
	// rather than when the first trace is drained.
	if err := d.Validate(); err != nil {
		return fmt.Errorf("seda: NPUConfig %q derives an invalid DRAM config: %w", c.Name, err)
	}
	return nil
}

// arrayConfig builds the systolic-array simulator configuration.
func (c NPUConfig) arrayConfig() (*scalesim.Config, error) {
	return scalesim.New(c.ArrayRows, c.ArrayCols, c.SRAMBytes)
}

// DRAMConfig derives the DRAM timing model in accelerator cycles: the
// geometry knobs override the DDR4-like template where set, burst time
// comes from the per-channel share of the aggregate bandwidth, and the
// DDR latencies (expressed in nanoseconds by the template) are scaled
// by the accelerator clock. This derived config is part of the cache
// fingerprint (see ConfigFingerprint), so every knob that reaches the
// timing model is content-addressed.
func (c NPUConfig) DRAMConfig() dram.Config {
	cfg := dram.DDR4Like(c.Channels)
	if c.BanksPerChan > 0 {
		cfg.BanksPerChan = c.BanksPerChan
	}
	if c.RowBytes > 0 {
		cfg.RowBytes = c.RowBytes
	}
	if c.BurstBytes > 0 {
		cfg.BurstBytes = c.BurstBytes
	}
	if c.WindowSize > 0 {
		cfg.WindowSize = c.WindowSize
	}
	perChan := c.BandwidthB / float64(c.Channels)
	scale := c.FreqHz / 1e9 // template latencies are in ns

	burst := uint64(float64(cfg.BurstBytes) / perChan * c.FreqHz)
	if burst == 0 {
		burst = 1
	}
	cfg.TBurst = burst
	cfg.TCL = scaleNS(cfg.TCL, scale)
	cfg.TRCD = scaleNS(cfg.TRCD, scale)
	cfg.TRP = scaleNS(cfg.TRP, scale)
	cfg.TRAS = scaleNS(cfg.TRAS, scale)
	cfg.TRefi = scaleNS(cfg.TRefi, scale)
	cfg.TRfc = scaleNS(cfg.TRfc, scale)
	return cfg
}

func scaleNS(ns uint64, scale float64) uint64 {
	v := uint64(float64(ns) * scale)
	if v == 0 {
		v = 1
	}
	return v
}

// Schemes returns the six protection configurations of Fig. 5/6 in
// plot order.
func Schemes() []memprot.Scheme { return memprot.AllSchemes() }
