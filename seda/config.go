// Package seda is the public API of the SeDA reproduction: it wires
// the systolic-array simulator, the memory-protection schemes and the
// DRAM timing model into the evaluation pipeline of the paper's §IV
// and exposes the two NPU configurations of Table II.
//
// Typical use:
//
//	npu := seda.ServerNPU()
//	rows, err := seda.RunNetwork(npu, model.ByName("rest"))
//	// rows contains normalized traffic and performance per scheme.
package seda

import (
	"fmt"

	"repro/internal/dram"
	"repro/internal/memprot"
	"repro/internal/scalesim"
)

// NPUConfig describes an accelerator platform (Table II).
type NPUConfig struct {
	Name       string
	ArrayRows  int
	ArrayCols  int
	SRAMBytes  int
	FreqHz     float64
	BandwidthB float64 // aggregate DRAM bandwidth in bytes/s
	Channels   int
}

// ServerNPU returns the Google TPU v1-like configuration:
// 256×256 PEs, 24 MB SRAM, 1 GHz, 20 GB/s over four 64-bit channels.
func ServerNPU() NPUConfig {
	return NPUConfig{
		Name:       "server",
		ArrayRows:  256,
		ArrayCols:  256,
		SRAMBytes:  24 * 1024 * 1024,
		FreqHz:     1e9,
		BandwidthB: 20e9,
		Channels:   4,
	}
}

// EdgeNPU returns the Samsung Exynos 990-like configuration:
// 32×32 PEs, 480 KB SRAM, 2.75 GHz, 10 GB/s over four channels.
func EdgeNPU() NPUConfig {
	return NPUConfig{
		Name:       "edge",
		ArrayRows:  32,
		ArrayCols:  32,
		SRAMBytes:  480 * 1024,
		FreqHz:     2.75e9,
		BandwidthB: 10e9,
		Channels:   4,
	}
}

// Validate checks the configuration.
func (c NPUConfig) Validate() error {
	if c.ArrayRows <= 0 || c.ArrayCols <= 0 || c.SRAMBytes <= 0 {
		return fmt.Errorf("seda: non-positive compute config %+v", c)
	}
	if c.FreqHz <= 0 || c.BandwidthB <= 0 || c.Channels <= 0 {
		return fmt.Errorf("seda: non-positive memory config %+v", c)
	}
	return nil
}

// arrayConfig builds the systolic-array simulator configuration.
func (c NPUConfig) arrayConfig() (*scalesim.Config, error) {
	return scalesim.New(c.ArrayRows, c.ArrayCols, c.SRAMBytes)
}

// dramConfig derives the DRAM timing model in accelerator cycles:
// burst time comes from the per-channel share of the aggregate
// bandwidth, and the DDR latencies (expressed in nanoseconds by the
// template) are scaled by the accelerator clock.
func (c NPUConfig) dramConfig() dram.Config {
	cfg := dram.DDR4Like(c.Channels)
	perChan := c.BandwidthB / float64(c.Channels)
	scale := c.FreqHz / 1e9 // template latencies are in ns

	burst := uint64(float64(cfg.BurstBytes) / perChan * c.FreqHz)
	if burst == 0 {
		burst = 1
	}
	cfg.TBurst = burst
	cfg.TCL = scaleNS(cfg.TCL, scale)
	cfg.TRCD = scaleNS(cfg.TRCD, scale)
	cfg.TRP = scaleNS(cfg.TRP, scale)
	cfg.TRAS = scaleNS(cfg.TRAS, scale)
	cfg.TRefi = scaleNS(cfg.TRefi, scale)
	cfg.TRfc = scaleNS(cfg.TRfc, scale)
	return cfg
}

func scaleNS(ns uint64, scale float64) uint64 {
	v := uint64(float64(ns) * scale)
	if v == 0 {
		v = 1
	}
	return v
}

// Schemes returns the six protection configurations of Fig. 5/6 in
// plot order.
func Schemes() []memprot.Scheme { return memprot.AllSchemes() }
