package seda

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteTrafficCSV emits the Fig. 5 series as CSV (one row per
// workload, one column per scheme, final "avg" row) for plotting.
func (s *SuiteResult) WriteTrafficCSV(w io.Writer) error {
	return s.writeCSV(w, func(r RunResult) float64 { return r.NormTraffic })
}

// WritePerfCSV emits the Fig. 6 series as CSV.
func (s *SuiteResult) WritePerfCSV(w io.Writer) error {
	return s.writeCSV(w, func(r RunResult) float64 { return r.NormPerf })
}

func (s *SuiteResult) writeCSV(w io.Writer, f func(RunResult) float64) error {
	cw := csv.NewWriter(w)
	schemes := Schemes()
	header := []string{"workload"}
	for _, sc := range schemes {
		header = append(header, sc.Name())
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, name := range s.Workloads() {
		rec := []string{name}
		for _, sc := range schemes {
			r, err := SchemeRow(s.Rows[name], sc)
			if err != nil {
				return fmt.Errorf("seda: csv export: %w", err)
			}
			rec = append(rec, strconv.FormatFloat(f(r), 'f', 4, 64))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	rec := []string{"avg"}
	for _, sc := range schemes {
		rec = append(rec, strconv.FormatFloat(s.avg(sc, f), 'f', 4, 64))
	}
	if err := cw.Write(rec); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}
