// Package repro reproduces "SeDA: Secure and Efficient DNN
// Accelerators with Hardware/Software Synergy" (DAC 2025).
//
// The public API lives in repro/seda (experiment pipeline and NPU
// configurations). The substrates are internal packages:
//
//	internal/aesx      AES-128/192/256 + CTR + bandwidth-aware OTPs (B-AES)
//	internal/sha256x   SHA-256, HMAC, truncated block MACs
//	internal/xormac    XOR-MAC aggregation, layer & model MACs
//	internal/merkle    Merkle and Bonsai-Merkle integrity trees
//	internal/cache     set-associative LRU metadata-cache simulator
//	internal/trace     DRAM access-trace representation
//	internal/dram      multi-channel DDR timing simulator
//	internal/model     DNN layer tables for the 13 benchmark workloads
//	internal/scalesim  systolic-array timing + tiling + trace generation
//	internal/tiling    protection-block alignment & over-fetch analysis
//	internal/authblock SecureLoop-style optBlk search
//	internal/memprot   SGX/MGX/SeDA protection schemes as trace transformers
//	internal/hwmodel   28nm T-AES vs B-AES area/power model
//	internal/attack    SECA and RePA attacks + defenses
//	internal/core      functional SeDA protection unit (Crypt+Integ engines)
//	internal/nnexec    reference executor for the benchmark DNN layers
//	internal/secinfer  end-to-end secure inference over the SeDA unit
//	internal/rescache  content-addressed result cache (LRU + disk + singleflight)
//	internal/failpoint named fault-injection sites for the chaos suites
//	internal/explore   design-space exploration (surrogate-pruned Pareto search)
//	internal/obs       stage tracing, metrics registry, structured logs, pprof
//	internal/serve     the HTTP serving stack (API, lifecycle, metrics)
//	internal/cluster   fault-tolerant routing over a fleet of serve replicas
//	internal/loadgen   deterministic traffic scenarios + capacity search
//
// The pipeline is deterministic, so results are memoizable:
// seda.RunSuiteCached/RunNetworkCached serve rows through
// internal/rescache keyed by seda.ConfigFingerprint, and the
// cmd/seda-serve HTTP server ("sweep-as-a-service") exposes the cached
// sweeps as JSON or CSV with singleflight deduplication of concurrent
// identical requests. cmd/seda-router fronts N such replicas with
// config-fingerprint-affinity routing (rendezvous hashing over the
// same cache fingerprints), health-checked failover, per-replica
// circuit breakers, budgeted retry with backoff and optional hedging,
// and graceful degradation from a shared disk-cache tier.
// cmd/seda-loadgen measures what the stack sustains: deterministic
// scenario replay, coordinated-omission-corrected latency, and an SLO
// capacity search recorded in BENCH_SERVE.json.
//
// The benchmarks in bench_test.go regenerate every table and figure of
// the paper's evaluation; see DESIGN.md for the experiment index and
// the parallel pipeline's execution model (zero-copy traces, concurrent
// DRAM channels, suite-level worker pool), and EXPERIMENTS.md for
// paper-vs-measured numbers.
package repro
